//! The `BENCH_pioman.json` schema, owned in one place.
//!
//! Until PR 6, `bench.rs` hand-formatted the trajectory JSON and
//! `compare.rs` re-parsed it with a second hand-rolled parser — two
//! copies of the same schema that could (and once nearly did) drift.
//! This module is now the single owner of both halves: [`BenchResult`]
//! is the emit-side record, [`render_json`] writes it, [`BaselineEntry`]
//! is the parse-side record, [`parse_trajectory`] reads it, and the
//! round-trip tests below pin that `parse(render(x))` loses nothing.
//!
//! # Schema v2
//!
//! Version 1 recorded one number per scenario (`name → {mean_ns, iters,
//! seed}`). Version 2 records the *distribution* the paper's
//! responsiveness argument actually lives in:
//!
//! ```json
//! "scenario": { "mean_ns": 512.3, "p50_ns": 490, "p99_ns": 1180,
//!               "p999_ns": 2310, "iters": 2000, "seed": 42 }
//! ```
//!
//! There is no explicit version field — the percentile keys *are* the
//! version marker. [`parse_trajectory`] accepts both generations:
//! percentiles come back as `Option`s, `None` meaning a v1 file, and the
//! compare gate falls back to mean-only gating for such rows (warning,
//! not failing — an old committed baseline must stay comparable).
//! Unknown extra numeric fields are ignored on parse, so the schema can
//! grow again without breaking older binaries' gates.
//!
//! Everything is hand-rolled (the workspace is offline, no serde); names
//! are plain identifiers so no escaping is needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured benchmark: the unit of the `BENCH_pioman.json` schema
/// (v2: `name → {mean_ns, p50_ns, p99_ns, p999_ns, iters, seed}`).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark identifier (the JSON key).
    pub name: &'static str,
    /// Mean wall-clock nanoseconds per iteration (exact, not
    /// bucket-resolved — computed from the summed total).
    pub mean_ns: f64,
    /// Median per-iteration nanoseconds (histogram-resolved, ~3%).
    pub p50_ns: f64,
    /// 99th-percentile per-iteration nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile per-iteration nanoseconds (recorded for the
    /// trajectory; not gated — see `compare`).
    pub p999_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Seed the run was configured with.
    pub seed: u64,
}

impl BenchResult {
    /// Rescales every nanosecond field by `1/ops` — the contended
    /// scenarios time a round of `ops` inner operations per iteration and
    /// record per-op values, and the percentiles must scale with the mean
    /// or the trajectory would mix units.
    pub fn scale_per_op(&mut self, ops: f64) {
        self.mean_ns /= ops;
        self.p50_ns /= ops;
        self.p99_ns /= ops;
        self.p999_ns /= ops;
    }
}

/// One parsed baseline scenario. `mean_ns` is mandatory in every schema
/// generation; the percentiles are `None` when the file predates v2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineEntry {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median, if the file carries v2 percentiles.
    pub p50_ns: Option<f64>,
    /// 99th percentile, if present (the gated tail).
    pub p99_ns: Option<f64>,
    /// 99.9th percentile, if present.
    pub p999_ns: Option<f64>,
}

impl BaselineEntry {
    /// A v2 entry (all percentiles present).
    pub fn v2(mean_ns: f64, p50_ns: f64, p99_ns: f64, p999_ns: f64) -> Self {
        BaselineEntry {
            mean_ns,
            p50_ns: Some(p50_ns),
            p99_ns: Some(p99_ns),
            p999_ns: Some(p999_ns),
        }
    }

    /// A v1 entry (mean only).
    pub fn v1(mean_ns: f64) -> Self {
        BaselineEntry {
            mean_ns,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        }
    }

    /// `true` when this row predates schema v2 (no percentile fields) —
    /// the compare gate then falls back to mean-only for it.
    pub fn is_v1(&self) -> bool {
        self.p99_ns.is_none()
    }
}

/// Serializes a suite run as the `BENCH_pioman.json` document (schema
/// v2). Percentiles are written with `{:.1}` like the mean: sub-0.1 ns
/// resolution is below both clock and bucket resolution.
pub fn render_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  \"{}\": {{ \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"p999_ns\": {:.1}, \"iters\": {}, \"seed\": {} }}{}",
            r.name, r.mean_ns, r.p50_ns, r.p99_ns, r.p999_ns, r.iters, r.seed, comma
        );
    }
    out.push_str("}\n");
    out
}

/// Parses a `BENCH_pioman.json` document of either schema generation into
/// `name → `[`BaselineEntry`].
///
/// Accepts one outer JSON object whose values are flat objects of numeric
/// fields, with arbitrary whitespace — the shape every [`render_json`]
/// since v1 emits, so hand-edited and historical baselines still parse.
/// Rejects anything else with a description of where parsing stopped:
/// silently comparing against garbage would make the gate lie.
///
/// # Errors
///
/// Malformed JSON, non-flat values, duplicate scenario names, or a
/// scenario without `mean_ns`.
pub fn parse_trajectory(json: &str) -> Result<BTreeMap<String, BaselineEntry>, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let mut map = BTreeMap::new();
    p.expect(b'{')?;
    if !p.peek_is(b'}') {
        loop {
            let name = p.string()?;
            p.expect(b':')?;
            let fields = p.flat_object()?;
            let mean_ns = *fields
                .get("mean_ns")
                .ok_or_else(|| format!("scenario {name:?} has no mean_ns field"))?;
            let entry = BaselineEntry {
                mean_ns,
                p50_ns: fields.get("p50_ns").copied(),
                p99_ns: fields.get("p99_ns").copied(),
                p999_ns: fields.get("p999_ns").copied(),
            };
            if map.insert(name.clone(), entry).is_some() {
                return Err(format!("duplicate scenario {name:?}"));
            }
            if !p.eat(b',') {
                break;
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(map)
}

/// Validates that `json` is one syntactically well-formed JSON value
/// (objects, arrays, strings without escapes, finite numbers, booleans,
/// null) with nothing trailing. This is the check the `stats --json`
/// snapshot test runs over the nested Prometheus-shaped document, which
/// is deeper than the flat trajectory schema [`parse_trajectory`] admits.
///
/// # Errors
///
/// A description of the first byte offset where the document stops being
/// JSON.
pub fn validate_json(json: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(())
}

/// Minimal recursive-descent parser for the schemas above (the workspace
/// is offline — no serde).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, want: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&want)
    }

    fn eat(&mut self, want: u8) -> bool {
        if self.peek_is(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                if s.contains('\\') {
                    return Err("escape sequences are not part of the schema".into());
                }
                self.pos += 1;
                return Ok(s.to_owned());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }

    /// `{ "key": number, ... }` with no nesting — the per-scenario value
    /// shape of every trajectory schema generation.
    fn flat_object(&mut self) -> Result<BTreeMap<String, f64>, String> {
        let mut fields = BTreeMap::new();
        self.expect(b'{')?;
        if !self.peek_is(b'}') {
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.insert(key, self.number()?);
                if !self.eat(b',') {
                    break;
                }
            }
        }
        self.expect(b'}')?;
        Ok(fields)
    }

    /// One arbitrary JSON value, recursively (for [`validate_json`]).
    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                if !self.peek_is(b'}') {
                    loop {
                        self.string()?;
                        self.expect(b':')?;
                        self.value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                }
                self.expect(b'}')
            }
            Some(b'[') => {
                self.pos += 1;
                if !self.peek_is(b']') {
                    loop {
                        self.value()?;
                        if !self.eat(b',') {
                            break;
                        }
                    }
                }
                self.expect(b']')
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            _ => self.number().map(|_| ()),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &'static str, mean_ns: f64) -> BenchResult {
        BenchResult {
            name,
            mean_ns,
            p50_ns: mean_ns * 0.9,
            p99_ns: mean_ns * 2.0,
            p999_ns: mean_ns * 4.0,
            iters: 10,
            seed: 42,
        }
    }

    #[test]
    fn render_parse_roundtrip_loses_nothing() {
        let results = [result("a_bench", 123.4), result("b_bench", 5.0)];
        let parsed = parse_trajectory(&render_json(&results)).unwrap();
        assert_eq!(parsed.len(), 2);
        for r in &results {
            let e = parsed[r.name];
            assert!((e.mean_ns - r.mean_ns).abs() < 0.05, "mean survives");
            assert!((e.p50_ns.unwrap() - r.p50_ns).abs() < 0.05);
            assert!((e.p99_ns.unwrap() - r.p99_ns).abs() < 0.05);
            assert!((e.p999_ns.unwrap() - r.p999_ns).abs() < 0.05);
            assert!(!e.is_v1());
        }
    }

    #[test]
    fn v1_documents_still_parse_as_mean_only() {
        // The exact shape v1 render_json committed to BENCH_pioman.json.
        let json = r#"{
  "submit_schedule_percore": { "mean_ns": 639.0, "iters": 2000, "seed": 42 },
  "newmad_pingpong": { "mean_ns": 1886199.8, "iters": 200, "seed": 42 }
}"#;
        let parsed = parse_trajectory(json).unwrap();
        let e = parsed["submit_schedule_percore"];
        assert!((e.mean_ns - 639.0).abs() < 1e-9);
        assert!(e.is_v1() && e.p50_ns.is_none() && e.p999_ns.is_none());
    }

    #[test]
    fn unknown_numeric_fields_are_ignored() {
        let json = r#"{ "x": { "mean_ns": 1.0, "p99_ns": 2.0, "frobs": 9 } }"#;
        let e = parse_trajectory(json).unwrap()["x"];
        assert_eq!(e.p99_ns, Some(2.0));
        assert!(!e.is_v1(), "p99 alone is enough to gate the tail");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_trajectory("").is_err());
        assert!(parse_trajectory("[]").is_err());
        assert!(
            parse_trajectory(r#"{ "x": { "iters": 3 } }"#).is_err(),
            "no mean_ns"
        );
        assert!(parse_trajectory(r#"{ "x": { "mean_ns": 1 } } trailing"#).is_err());
        assert!(
            parse_trajectory(r#"{ "x": { "mean_ns": 1 }, "x": { "mean_ns": 2 } }"#).is_err(),
            "duplicate keys"
        );
    }

    #[test]
    fn scale_per_op_keeps_units_consistent() {
        let mut r = result("contended", 1000.0);
        r.scale_per_op(10.0);
        assert_eq!(r.mean_ns, 100.0);
        assert_eq!(r.p50_ns, 90.0);
        assert_eq!(r.p99_ns, 200.0);
        assert_eq!(r.p999_ns, 400.0);
    }

    #[test]
    fn validate_json_accepts_nested_documents() {
        validate_json(r#"{"a": {"b": [1, 2.5, "s", true, null]}, "c": -3e2}"#).unwrap();
        validate_json("[]").unwrap();
        validate_json("42").unwrap();
    }

    #[test]
    fn validate_json_rejects_non_json() {
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json(r#"{"a": }"#).is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json(r#"{"a": 1} {"b": 2}"#).is_err());
    }
}
