//! Property tests on topology invariants.

use piom_cpuset::CpuSet;
use piom_topology::{Level, Topology, TopologyBuilder};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (1usize..=4, 1usize..=3, 1usize..=2, 1usize..=4).prop_map(|(numa, chips, caches, cores)| {
        TopologyBuilder::new("prop")
            .numa_nodes(numa)
            .chips_per_numa(chips)
            .caches_per_chip(caches)
            .cores_per_cache(cores)
            .build()
    })
}

proptest! {
    #[test]
    fn every_core_path_reaches_global_queue(t in arb_topology()) {
        for cpu in 0..t.n_cores() {
            let path: Vec<_> = t.path_to_root(cpu).collect();
            prop_assert_eq!(t.node(path[0]).level, Level::Core);
            prop_assert_eq!(*path.last().unwrap(), t.root());
            // cpusets grow along the path; strictly so between internal
            // nodes (dedup collapses duplicate internal spans). The core
            // leaf itself may equal its parent's span on degenerate shapes
            // (e.g. one core per NUMA node).
            for w in path.windows(2) {
                let inner = t.node(w[0]).cpuset;
                let outer = t.node(w[1]).cpuset;
                prop_assert!(inner.is_subset(&outer));
                if t.node(w[0]).level != Level::Core {
                    prop_assert!(inner != outer, "duplicate span survived dedup");
                }
            }
        }
    }

    #[test]
    fn smallest_covering_is_minimal(t in arb_topology(), seed in any::<u64>()) {
        // Build a random nonempty subset of the machine's cores.
        let n = t.n_cores();
        let mut set = CpuSet::new();
        let mut s = seed;
        for cpu in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s >> 63 == 1 { set.insert(cpu); }
        }
        if set.is_empty() { set.insert(seed as usize % n); }

        let id = t.smallest_covering(&set).unwrap();
        let node = t.node(id);
        prop_assert!(set.is_subset(&node.cpuset));
        // Minimality: no child of the chosen node also covers the set.
        for &child in &node.children {
            prop_assert!(!set.is_subset(&t.node(child).cpuset));
        }
    }

    #[test]
    fn locality_is_symmetric_metriclike(t in arb_topology()) {
        let n = t.n_cores();
        for a in 0..n {
            prop_assert_eq!(t.distance(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn node_arena_parents_precede_children(t in arb_topology()) {
        for (id, node) in t.iter() {
            if let Some(p) = node.parent {
                prop_assert!(p < id);
                prop_assert!(t.node(p).children.contains(&id));
            }
        }
    }

    #[test]
    fn core_nodes_are_leaves_numbered_in_order(t in arb_topology()) {
        for cpu in 0..t.n_cores() {
            let leaf = t.node(t.core_node(cpu));
            prop_assert_eq!(leaf.level, Level::Core);
            prop_assert_eq!(leaf.ordinal, cpu);
            prop_assert_eq!(leaf.cpuset, CpuSet::single(cpu));
            prop_assert!(leaf.children.is_empty());
        }
    }

    #[test]
    fn common_ancestor_agrees_with_smallest_covering(t in arb_topology()) {
        let n = t.n_cores();
        for a in 0..n.min(6) {
            for b in 0..n.min(6) {
                let anc = t.common_ancestor(a, b);
                let cover = t
                    .smallest_covering(&CpuSet::from_iter([a, b]))
                    .unwrap();
                prop_assert_eq!(anc, cover);
            }
        }
    }
}
