//! Scaling-study invariants for the topology crate, pinned from outside:
//!
//! * every builder preset up to the 1024-core quad-socket fabric produces
//!   a tree whose **children partition their parent's cpuset** exactly
//!   (no overlap, no gap) at every level;
//! * [`Topology::steal_order`] is a **permutation of the off-path nodes**
//!   whose nearest-span distances are non-decreasing — the property the
//!   manager's distance-tiered victim scan rides on;
//! * [`Topology::cores_by_distance_from_node`] is a **permutation of all
//!   cores** sorted by distance to the node's span — the property the
//!   steal-targeted wake scan rides on;
//! * random builder shapes (proptest) satisfy the same invariants, so the
//!   guarantees do not hinge on the preset dimensions being friendly.
//!
//! The distance checks recompute span distances from the public pairwise
//! [`Topology::distance`] metric, independently of the crate's internal
//! `nearest_span_distance`, so a bug there cannot vouch for itself.

use piom_cpuset::CpuSet;
use piom_topology::{presets, Level, NodeId, Topology, TopologyBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// All presets of the scaling ladder, smallest first.
fn ladder() -> Vec<Topology> {
    vec![
        presets::borderline(),
        presets::kwak(),
        presets::dual_socket_256(),
        presets::quad_socket_512(),
        presets::quad_socket_1024(),
    ]
}

/// Distance from `core` to the nearest core of `span`, recomputed from the
/// public pairwise metric (`usize::MAX` for an empty span).
fn span_distance(topo: &Topology, core: usize, span: &CpuSet) -> usize {
    span.iter()
        .map(|s| topo.distance(core, s))
        .min()
        .unwrap_or(usize::MAX)
}

/// Origins to check on a topology: exhaustive for small machines, a
/// deterministic structural sample (socket edges + middles) for the
/// many-core fabrics so the suite stays fast in debug builds.
fn sample_origins(topo: &Topology) -> Vec<usize> {
    let n = topo.n_cores();
    if n <= 64 {
        return (0..n).collect();
    }
    let mut picks = HashSet::new();
    for frac in 0..8 {
        let base = frac * n / 8;
        picks.insert(base);
        picks.insert(base + 1);
        picks.insert(base + n / 16);
    }
    picks.insert(n - 1);
    let mut v: Vec<_> = picks.into_iter().collect();
    v.sort_unstable();
    v
}

fn assert_steal_order_invariants(topo: &Topology, origin: usize) {
    let order = topo.steal_order_with_distance(origin);
    // Permutation: every node either lies on the origin's path or appears
    // in the steal order exactly once.
    let on_path: HashSet<usize> = topo.path_to_root(origin).map(|id| id.index()).collect();
    let seen: HashSet<usize> = order.iter().map(|(id, _)| id.index()).collect();
    assert_eq!(seen.len(), order.len(), "steal order repeats a victim");
    assert_eq!(
        seen.len() + on_path.len(),
        topo.n_nodes(),
        "steal order must cover every off-path node of {}",
        topo.name()
    );
    assert!(
        seen.is_disjoint(&on_path),
        "steal order must exclude the origin's own path"
    );
    // Distance consistency: the recorded tier distance matches the public
    // metric and never decreases along the order.
    let mut prev = 0usize;
    for &(id, dist) in &order {
        let recomputed = span_distance(topo, origin, &topo.node(id).cpuset);
        assert_eq!(
            dist,
            recomputed,
            "victim {id:?} distance mislabelled on {}",
            topo.name()
        );
        assert!(
            dist >= prev,
            "steal order of core {origin} jumps back from distance {prev} to {dist}"
        );
        prev = dist;
    }
    // The plain steal_order agrees with the distance-annotated one.
    let bare: Vec<NodeId> = topo.steal_order(origin);
    assert_eq!(bare, order.iter().map(|&(id, _)| id).collect::<Vec<_>>());
}

fn assert_wake_order_invariants(topo: &Topology, node: NodeId) {
    let order = topo.cores_by_distance_from_node(node);
    // Permutation of all cores.
    let seen: HashSet<usize> = order.iter().copied().collect();
    assert_eq!(order.len(), topo.n_cores());
    assert_eq!(seen.len(), topo.n_cores(), "wake order repeats a core");
    // Non-decreasing distance to the node's span under the public metric.
    let span = topo.node(node).cpuset;
    let mut prev = 0usize;
    for &core in &order {
        let d = span_distance(topo, core, &span);
        assert!(
            d >= prev,
            "wake order of node {node:?} jumps back from {prev} to {d} at core {core}"
        );
        prev = d;
    }
}

#[test]
fn ladder_presets_build_with_expected_shapes() {
    let expect = [
        ("borderline", 8, 1),
        ("kwak", 16, 4),
        ("dual-socket-256", 256, 2),
        ("quad-socket-512", 512, 4),
        ("quad-socket-1024", 1024, 4),
    ];
    for (topo, (name, cores, numa)) in ladder().iter().zip(expect) {
        assert_eq!(topo.name(), name);
        assert_eq!(topo.n_cores(), cores);
        let numa_nodes = topo.nodes_at_level(Level::NumaNode).len();
        // Single-NUMA machines collapse the level entirely.
        assert_eq!(numa_nodes, if numa > 1 { numa } else { 0 });
        assert_eq!(topo.all_cores(), CpuSet::first_n(cores));
    }
    // The 1024-core fabric saturates the cpuset exactly: every core id is
    // representable and none beyond.
    assert_eq!(presets::quad_socket_1024().n_cores(), CpuSet::MAX_CPUS);
}

#[test]
fn children_partition_parent_on_every_ladder_preset() {
    for topo in ladder() {
        for (id, node) in topo.iter() {
            if node.children.is_empty() {
                assert_eq!(node.level, Level::Core, "only cores are leaves");
                assert_eq!(node.cpuset.count(), 1);
                continue;
            }
            let mut union = CpuSet::EMPTY;
            for &c in &node.children {
                let child = topo.node(c);
                assert_eq!(child.parent, Some(id));
                assert!(child.cpuset.is_subset(&node.cpuset));
                assert!(
                    union.is_disjoint(&child.cpuset),
                    "children of {id:?} overlap on {}",
                    topo.name()
                );
                union |= child.cpuset;
            }
            assert_eq!(
                union,
                node.cpuset,
                "children of {id:?} must cover the parent exactly on {}",
                topo.name()
            );
        }
    }
}

#[test]
fn steal_order_is_a_distance_sorted_permutation_up_to_1024_cores() {
    for topo in ladder() {
        for origin in sample_origins(&topo) {
            assert_steal_order_invariants(&topo, origin);
        }
    }
}

#[test]
fn wake_order_is_a_distance_sorted_permutation_up_to_1024_cores() {
    for topo in ladder() {
        // Exhaustive over non-core nodes on small machines; structural
        // sample (root + one node per level per socket) on the fabrics.
        let nodes: Vec<NodeId> = if topo.n_nodes() <= 64 {
            topo.node_ids().collect()
        } else {
            let mut picks = vec![topo.root()];
            for level in [Level::NumaNode, Level::Chip, Level::Cache, Level::Core] {
                let at = topo.nodes_at_level(level);
                picks.extend(at.iter().step_by((at.len() / 4).max(1)).copied());
            }
            picks
        };
        for node in nodes {
            assert_wake_order_invariants(&topo, node);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random builder shapes satisfy the same invariants as the presets,
    /// including shapes whose levels collapse (counts of 1 anywhere).
    #[test]
    fn random_shapes_hold_partition_and_order_invariants(
        numa in 1usize..=4,
        chips in 1usize..=3,
        caches in 1usize..=3,
        cores in 1usize..=6,
        origin_seed in 0usize..64,
    ) {
        let topo = TopologyBuilder::new("prop")
            .numa_nodes(numa)
            .chips_per_numa(chips)
            .caches_per_chip(caches)
            .cores_per_cache(cores)
            .build();
        prop_assert_eq!(topo.n_cores(), numa * chips * caches * cores);
        for (id, node) in topo.iter() {
            let mut union = CpuSet::EMPTY;
            for &c in &node.children {
                prop_assert!(union.is_disjoint(&topo.node(c).cpuset));
                union |= topo.node(c).cpuset;
            }
            if !node.children.is_empty() {
                prop_assert_eq!(union, node.cpuset);
            }
            let _ = id;
        }
        let origin = origin_seed % topo.n_cores();
        assert_steal_order_invariants(&topo, origin);
        assert_wake_order_invariants(&topo, topo.core_node(origin));
        assert_wake_order_invariants(&topo, topo.root());
    }
}
