//! Topology construction: generic builder and the paper's testbed presets.

use crate::{Level, Node, NodeId, Topology};
use piom_cpuset::CpuSet;

/// Shape of one machine: how many of each component nest inside the parent.
///
/// A zero/one count or a grouping identical to the parent's collapses that
/// level (no duplicate queues for identical spans — matching the paper's
/// "depending on the machine architecture" clause in §III-A).
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    numa_nodes: usize,
    chips_per_numa: usize,
    caches_per_chip: usize,
    cores_per_cache: usize,
}

impl TopologyBuilder {
    /// Starts a builder with a single NUMA node, one chip, one cache group and
    /// one core — adjust with the setters.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            numa_nodes: 1,
            chips_per_numa: 1,
            caches_per_chip: 1,
            cores_per_cache: 1,
        }
    }

    /// Number of NUMA nodes in the machine.
    pub fn numa_nodes(mut self, n: usize) -> Self {
        self.numa_nodes = n.max(1);
        self
    }

    /// Number of chips (sockets) per NUMA node.
    pub fn chips_per_numa(mut self, n: usize) -> Self {
        self.chips_per_numa = n.max(1);
        self
    }

    /// Number of shared-cache groups per chip.
    pub fn caches_per_chip(mut self, n: usize) -> Self {
        self.caches_per_chip = n.max(1);
        self
    }

    /// Number of cores per shared-cache group.
    pub fn cores_per_cache(mut self, n: usize) -> Self {
        self.cores_per_cache = n.max(1);
        self
    }

    /// Total cores this shape describes.
    pub fn total_cores(&self) -> usize {
        self.numa_nodes * self.chips_per_numa * self.caches_per_chip * self.cores_per_cache
    }

    /// Builds the topology tree, collapsing levels whose nodes would span
    /// exactly the same cpuset as their parent (e.g. a chip containing a
    /// single shared cache produces only one node).
    pub fn build(&self) -> Topology {
        let cores_per_chip = self.caches_per_chip * self.cores_per_cache;
        let cores_per_numa = self.chips_per_numa * cores_per_chip;
        let total = self.total_cores();

        let mut nodes: Vec<Node> = Vec::new();
        let push = |level: Level,
                    ordinal: usize,
                    cpuset: CpuSet,
                    parent: Option<NodeId>,
                    nodes: &mut Vec<Node>|
         -> NodeId {
            let depth = parent.map_or(0, |p| nodes[p.index()].depth + 1);
            let id = NodeId(nodes.len() as u32);
            nodes.push(Node {
                level,
                ordinal,
                cpuset,
                parent,
                children: Vec::new(),
                depth,
            });
            if let Some(p) = parent {
                nodes[p.index()].children.push(id);
            }
            id
        };

        let root = push(Level::Machine, 0, CpuSet::first_n(total), None, &mut nodes);

        let mut core_nodes = vec![NodeId(0); total];
        let mut cache_ordinal = 0usize;
        let mut chip_ordinal = 0usize;

        for numa in 0..self.numa_nodes {
            let numa_span = CpuSet::range(numa * cores_per_numa..(numa + 1) * cores_per_numa);
            // Collapse the NUMA level when there is only one NUMA node:
            // its span equals the machine's.
            let numa_parent = if self.numa_nodes > 1 {
                push(Level::NumaNode, numa, numa_span, Some(root), &mut nodes)
            } else {
                root
            };

            for chip in 0..self.chips_per_numa {
                let base = numa * cores_per_numa + chip * cores_per_chip;
                let chip_span = CpuSet::range(base..base + cores_per_chip);
                let chip_parent = if self.chips_per_numa > 1 || self.numa_nodes == 1 {
                    // A chip level is interesting either when a NUMA node has
                    // several chips, or when there is no NUMA level at all
                    // (plain SMP: machine -> chips).
                    if chip_span == nodes[numa_parent.index()].cpuset {
                        numa_parent
                    } else {
                        let id = push(
                            Level::Chip,
                            chip_ordinal,
                            chip_span,
                            Some(numa_parent),
                            &mut nodes,
                        );
                        chip_ordinal += 1;
                        id
                    }
                } else {
                    chip_ordinal += 1;
                    numa_parent
                };

                for cache in 0..self.caches_per_chip {
                    let cbase = base + cache * self.cores_per_cache;
                    let cache_span = CpuSet::range(cbase..cbase + self.cores_per_cache);
                    let cache_parent = if cache_span == nodes[chip_parent.index()].cpuset {
                        chip_parent
                    } else {
                        let id = push(
                            Level::Cache,
                            cache_ordinal,
                            cache_span,
                            Some(chip_parent),
                            &mut nodes,
                        );
                        cache_ordinal += 1;
                        id
                    };

                    for core in 0..self.cores_per_cache {
                        let cpu = cbase + core;
                        let id = push(
                            Level::Core,
                            cpu,
                            CpuSet::single(cpu),
                            Some(cache_parent),
                            &mut nodes,
                        );
                        core_nodes[cpu] = id;
                    }
                }
            }
        }

        Topology {
            nodes,
            root,
            core_nodes,
            name: self.name.clone(),
        }
    }
}

/// Ready-made topologies, including the paper's two evaluation machines.
pub mod presets {
    use super::TopologyBuilder;
    use crate::Topology;

    /// `borderline`: 4-socket dual-core AMD Opteron 8218, 8 cores total.
    ///
    /// "This CPU model does not feature L3 cache, thus sibling cores on a
    /// chip do not share cache, but they share physical memory banks" (§V-A).
    /// Tree: machine → 4 chips → 8 cores (no cache level, chip == memory
    /// bank grouping).
    pub fn borderline() -> Topology {
        TopologyBuilder::new("borderline")
            .numa_nodes(1)
            .chips_per_numa(4)
            .caches_per_chip(1)
            .cores_per_cache(2)
            .build()
    }

    /// `kwak`: 4-socket quad-core AMD Opteron 8347HE, 16 cores, 4 NUMA
    /// nodes, shared L3 per chip (§V-A, Fig. 3).
    ///
    /// Each socket is one NUMA node whose four cores share the L3, so the
    /// chip and cache levels collapse into the NUMA level:
    /// machine → 4 NUMA nodes → 16 cores.
    pub fn kwak() -> Topology {
        TopologyBuilder::new("kwak")
            .numa_nodes(4)
            .chips_per_numa(1)
            .caches_per_chip(1)
            .cores_per_cache(4)
            .build()
    }

    /// A generic symmetric machine, handy for scaling studies:
    /// `numa` NUMA nodes × `chips` chips × `cores` cores (no cache split).
    pub fn symmetric(numa: usize, chips: usize, cores: usize) -> Topology {
        TopologyBuilder::new(format!("sym-{numa}x{chips}x{cores}"))
            .numa_nodes(numa)
            .chips_per_numa(chips)
            .caches_per_chip(1)
            .cores_per_cache(cores)
            .build()
    }

    /// A single-core machine (degenerate tree: machine → core). Useful as a
    /// host-shaped fallback in tests on constrained machines.
    pub fn uniprocessor() -> Topology {
        TopologyBuilder::new("uniprocessor").build()
    }

    /// `dual-socket-256`: a simulated dual-socket 256-core fabric for the
    /// NUMA-scale stealing study — 2 NUMA nodes (one per socket) × 2 chips
    /// × 4 shared-cache groups × 16 cores. Every level survives collapsing,
    /// so steal orders cross four distance tiers before the interconnect.
    pub fn dual_socket_256() -> Topology {
        TopologyBuilder::new("dual-socket-256")
            .numa_nodes(2)
            .chips_per_numa(2)
            .caches_per_chip(4)
            .cores_per_cache(16)
            .build()
    }

    /// `quad-socket-512`: 4 NUMA nodes × 2 chips × 4 caches × 16 cores
    /// (512 cores) — the middle rung of the 256/512/1024 scaling ladder.
    pub fn quad_socket_512() -> Topology {
        TopologyBuilder::new("quad-socket-512")
            .numa_nodes(4)
            .chips_per_numa(2)
            .caches_per_chip(4)
            .cores_per_cache(16)
            .build()
    }

    /// `quad-socket-1024`: 4 NUMA nodes × 4 chips × 4 caches × 16 cores —
    /// the full 1024-core fabric, saturating [`CpuSet::MAX_CPUS`]
    /// (`piom_cpuset::CpuSet::MAX_CPUS`). The hierarchical-stealing
    /// acceptance test drains a starved socket on this shape.
    pub fn quad_socket_1024() -> Topology {
        TopologyBuilder::new("quad-socket-1024")
            .numa_nodes(4)
            .chips_per_numa(4)
            .caches_per_chip(4)
            .cores_per_cache(16)
            .build()
    }

    /// A best-effort topology for the host this process runs on: a flat SMP
    /// machine with `std::thread::available_parallelism()` cores. The real
    /// PIOMan reads the MARCEL topology; portable Rust has no NUMA
    /// introspection in std, so the host is modelled as one chip.
    pub fn host() -> Topology {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        TopologyBuilder::new("host")
            .numa_nodes(1)
            .chips_per_numa(1)
            .caches_per_chip(1)
            .cores_per_cache(n)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniprocessor_collapses_everything() {
        let t = presets::uniprocessor();
        assert_eq!(t.n_cores(), 1);
        // machine + core only
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.node(t.core_node(0)).parent, Some(t.root()));
    }

    #[test]
    fn symmetric_counts() {
        let t = presets::symmetric(2, 2, 2);
        assert_eq!(t.n_cores(), 8);
        assert_eq!(t.nodes_at_level(Level::NumaNode).len(), 2);
        assert_eq!(t.nodes_at_level(Level::Chip).len(), 4);
    }

    #[test]
    fn deep_tree_with_cache_level() {
        // 2 NUMA x 1 chip x 2 caches x 2 cores: cache level survives because
        // each cache spans half its chip.
        let t = TopologyBuilder::new("deep")
            .numa_nodes(2)
            .chips_per_numa(1)
            .caches_per_chip(2)
            .cores_per_cache(2)
            .build();
        assert_eq!(t.n_cores(), 8);
        assert_eq!(t.nodes_at_level(Level::Cache).len(), 4);
        // Each core's path: core -> cache -> numa -> machine.
        let path: Vec<_> = t.path_to_root(0).collect();
        let levels: Vec<_> = path.iter().map(|id| t.node(*id).level).collect();
        assert_eq!(
            levels,
            vec![Level::Core, Level::Cache, Level::NumaNode, Level::Machine]
        );
    }

    #[test]
    fn children_partition_parent() {
        for t in [
            presets::borderline(),
            presets::kwak(),
            presets::symmetric(2, 3, 2),
        ] {
            for (_, node) in t.iter() {
                if node.children.is_empty() {
                    assert_eq!(node.level, Level::Core);
                    continue;
                }
                let mut union = CpuSet::EMPTY;
                for &c in &node.children {
                    let child = t.node(c);
                    assert!(child.cpuset.is_subset(&node.cpuset));
                    assert!(union.is_disjoint(&child.cpuset), "children overlap");
                    union |= child.cpuset;
                }
                assert_eq!(union, node.cpuset, "children cover parent exactly");
            }
        }
    }

    #[test]
    fn host_topology_builds() {
        let t = presets::host();
        assert!(t.n_cores() >= 1);
        assert_eq!(t.name(), "host");
    }

    use crate::Level;
}
