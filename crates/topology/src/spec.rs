//! Spec-string topology construction, e.g. `"numa:4 chip:1 cache:1 core:4"`.

use crate::{Topology, TopologyBuilder};
use core::fmt;

/// Error from [`Topology::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpecError {
    /// A component was not of the form `key:count`.
    Malformed(String),
    /// An unknown key (not one of `numa`, `chip`, `cache`, `core`).
    UnknownKey(String),
    /// A count failed to parse or was zero.
    BadCount(String),
    /// The shape describes more cores than a `CpuSet` can hold.
    TooManyCores(usize),
}

impl fmt::Display for TopoSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoSpecError::Malformed(s) => write!(f, "malformed component {s:?}"),
            TopoSpecError::UnknownKey(s) => write!(f, "unknown topology key {s:?}"),
            TopoSpecError::BadCount(s) => write!(f, "bad count in {s:?}"),
            TopoSpecError::TooManyCores(n) => write!(
                f,
                "{n} cores exceed CpuSet capacity {}",
                piom_cpuset::CpuSet::MAX_CPUS
            ),
        }
    }
}

impl std::error::Error for TopoSpecError {}

impl Topology {
    /// Builds a topology from a whitespace-separated spec string.
    ///
    /// Recognised keys: `numa`, `chip`, `cache`, `core`; each takes a count
    /// `key:N`. Omitted keys default to 1. Example: the paper's kwak machine
    /// is `"numa:4 core:4"`.
    ///
    /// ```
    /// use piom_topology::Topology;
    /// let t = Topology::from_spec("numa:4 core:4").unwrap();
    /// assert_eq!(t.n_cores(), 16);
    /// ```
    pub fn from_spec(spec: &str) -> Result<Topology, TopoSpecError> {
        let mut b = TopologyBuilder::new(format!("spec({})", spec.trim()));
        for comp in spec.split_whitespace() {
            let (key, count) = comp
                .split_once(':')
                .ok_or_else(|| TopoSpecError::Malformed(comp.to_owned()))?;
            let n: usize = count
                .parse()
                .map_err(|_| TopoSpecError::BadCount(comp.to_owned()))?;
            if n == 0 {
                return Err(TopoSpecError::BadCount(comp.to_owned()));
            }
            b = match key {
                "numa" => b.numa_nodes(n),
                "chip" => b.chips_per_numa(n),
                "cache" => b.caches_per_chip(n),
                "core" => b.cores_per_cache(n),
                _ => return Err(TopoSpecError::UnknownKey(key.to_owned())),
            };
        }
        if b.total_cores() > piom_cpuset::CpuSet::MAX_CPUS {
            return Err(TopoSpecError::TooManyCores(b.total_cores()));
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kwak_shape() {
        let t = Topology::from_spec("numa:4 core:4").unwrap();
        assert_eq!(t.n_cores(), 16);
        assert_eq!(t.nodes_at_level(crate::Level::NumaNode).len(), 4);
    }

    #[test]
    fn defaults_to_uniprocessor() {
        let t = Topology::from_spec("").unwrap();
        assert_eq!(t.n_cores(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            Topology::from_spec("numa=4"),
            Err(TopoSpecError::Malformed(_))
        ));
        assert!(matches!(
            Topology::from_spec("sockets:2"),
            Err(TopoSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            Topology::from_spec("core:0"),
            Err(TopoSpecError::BadCount(_))
        ));
        assert!(matches!(
            Topology::from_spec("core:zero"),
            Err(TopoSpecError::BadCount(_))
        ));
    }

    #[test]
    fn rejects_oversized() {
        assert!(matches!(
            Topology::from_spec("numa:64 core:64"),
            Err(TopoSpecError::TooManyCores(_))
        ));
    }
}
