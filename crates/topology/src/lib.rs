//! Hierarchical machine topology model.
//!
//! PIOMan maps its task queues onto the machine architecture: one queue per
//! core, per shared cache, per chip, per NUMA node, plus one global queue
//! (Trahay & Denis, CLUSTER 2009, §III-A and Fig. 2). This crate provides the
//! topology tree those queues attach to:
//!
//! * [`Topology`] — an immutable arena-backed tree of [`Node`]s, one per
//!   topology object, each carrying the [`CpuSet`] of cores it spans;
//! * [`Level`] — the depth classes (machine / NUMA node / chip / cache / core);
//! * builders: the paper's two testbeds [`presets::borderline`] and
//!   [`presets::kwak`], a generic [`TopologyBuilder`], and a spec-string
//!   parser [`Topology::from_spec`];
//! * the *level resolution* query used at task submission: the smallest node
//!   whose span covers a given CPU set ([`Topology::smallest_covering`]);
//! * a topological distance metric between cores used by cost models and by
//!   the "nearest idle core" submission-offload policy;
//! * an ASCII renderer reproducing the structure of the paper's Figs. 2–3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use piom_cpuset::CpuSet;

mod build;
mod distance;
mod render;
mod spec;

pub use build::{presets, TopologyBuilder};
pub use distance::Locality;
pub use spec::TopoSpecError;

/// Depth class of a topology node, ordered from outermost to innermost.
///
/// The ordering (`Machine < NumaNode < ... < Core`) matches containment:
/// outer levels span supersets of inner levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The whole machine (root; owns the Global Queue).
    Machine,
    /// A NUMA node: cores sharing a local memory bank.
    NumaNode,
    /// A chip / socket / package.
    Chip,
    /// A shared cache (e.g. an L3 shared by the cores of a chip).
    Cache,
    /// A single core (owns a Per-Core Queue).
    Core,
}

impl Level {
    /// All levels, outermost first.
    pub const ALL: [Level; 5] = [
        Level::Machine,
        Level::NumaNode,
        Level::Chip,
        Level::Cache,
        Level::Core,
    ];

    /// Human-readable queue name used by the paper ("Global Queue", ...).
    pub fn queue_name(self) -> &'static str {
        match self {
            Level::Machine => "Global Queue",
            Level::NumaNode => "Per-NUMA Node Queue",
            Level::Chip => "Per-Chip Queue",
            Level::Cache => "Per-Cache Queue",
            Level::Core => "Per-Core Queue",
        }
    }
}

impl core::fmt::Display for Level {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Level::Machine => "machine",
            Level::NumaNode => "numa",
            Level::Chip => "chip",
            Level::Cache => "cache",
            Level::Core => "core",
        };
        f.write_str(s)
    }
}

/// Index of a node within a [`Topology`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One object in the topology tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// Depth class of this node.
    pub level: Level,
    /// Ordinal of this node among nodes of the same level (e.g. NUMA #2).
    pub ordinal: usize,
    /// Set of cores this node spans.
    pub cpuset: CpuSet,
    /// Parent node (`None` for the machine root).
    pub parent: Option<NodeId>,
    /// Children, in ascending cpuset order.
    pub children: Vec<NodeId>,
    /// Depth in the tree (root = 0).
    pub depth: usize,
}

/// An immutable machine topology tree.
///
/// Constructed by [`TopologyBuilder`], [`presets`], or [`Topology::from_spec`].
/// Nodes live in an arena; [`NodeId`]s index into it. The root is always a
/// [`Level::Machine`] node spanning every core, and the leaves are exactly
/// the [`Level::Core`] nodes, one per core, numbered `0..n_cores` in cpuset
/// order.
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    /// Leaf node of each core, indexed by core id.
    pub(crate) core_nodes: Vec<NodeId>,
    /// Optional human-readable name (e.g. "kwak").
    pub(crate) name: String,
}

impl Topology {
    /// The root (machine-level) node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Name given at construction ("borderline", "kwak", "custom", ...).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of cores.
    #[inline]
    pub fn n_cores(&self) -> usize {
        self.core_nodes.len()
    }

    /// Total number of topology nodes (hence of task queues).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Shared view of a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterator over all node ids in arena order (parents precede children).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over `(NodeId, &Node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The leaf node of core `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= n_cores()`.
    #[inline]
    pub fn core_node(&self, cpu: usize) -> NodeId {
        self.core_nodes[cpu]
    }

    /// All nodes of a given level, in ordinal order.
    pub fn nodes_at_level(&self, level: Level) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .iter()
            .filter(|(_, n)| n.level == level)
            .map(|(id, _)| id)
            .collect();
        v.sort_by_key(|id| self.node(*id).ordinal);
        v
    }

    /// The set of every core on the machine.
    #[inline]
    pub fn all_cores(&self) -> CpuSet {
        self.node(self.root).cpuset
    }

    /// Walks from the leaf of `cpu` up to the root, yielding each node id.
    ///
    /// This is the queue scan order of the paper's Algorithm 1: Per-Core
    /// Queue first, then each enclosing queue, ending at the Global Queue.
    pub fn path_to_root(&self, cpu: usize) -> PathToRoot<'_> {
        PathToRoot {
            topo: self,
            next: Some(self.core_node(cpu)),
        }
    }

    /// The smallest (deepest) node whose cpuset is a superset of `set`.
    ///
    /// This is the *level resolution* performed at task submission (§III-A):
    /// "this CPU set is examinated to find the corresponding task queue".
    /// Returns `None` if `set` is empty or contains cores outside the machine.
    pub fn smallest_covering(&self, set: &CpuSet) -> Option<NodeId> {
        if set.is_empty() || !set.is_subset(&self.all_cores()) {
            return None;
        }
        let mut current = self.root;
        'descend: loop {
            let node = self.node(current);
            for &child in &node.children {
                if set.is_subset(&self.node(child).cpuset) {
                    current = child;
                    continue 'descend;
                }
            }
            return Some(current);
        }
    }

    /// The deepest common ancestor of cores `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either core id is out of range.
    pub fn common_ancestor(&self, a: usize, b: usize) -> NodeId {
        let mut na = self.core_node(a);
        let mut nb = self.core_node(b);
        while self.node(na).depth > self.node(nb).depth {
            na = self.node(na).parent.expect("non-root has parent");
        }
        while self.node(nb).depth > self.node(na).depth {
            nb = self.node(nb).parent.expect("non-root has parent");
        }
        while na != nb {
            na = self.node(na).parent.expect("walk meets at root");
            nb = self.node(nb).parent.expect("walk meets at root");
        }
        na
    }

    /// Ancestor of `id` at exactly `level`, if the tree has that level on the
    /// path to the root (`id` itself qualifies).
    pub fn ancestor_at_level(&self, id: NodeId, level: Level) -> Option<NodeId> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.node(c).level == level {
                return Some(c);
            }
            cur = self.node(c).parent;
        }
        None
    }

    /// Cores of `set` sorted by increasing topological distance from `origin`
    /// (ties broken by core id). Used by the nearest-idle-core offload policy.
    pub fn cores_by_distance(&self, origin: usize, set: &CpuSet) -> Vec<usize> {
        let mut cores: Vec<usize> = set.iter().filter(|&c| c < self.n_cores()).collect();
        cores.sort_by_key(|&c| (self.distance(origin, c), c));
        cores
    }
}

/// Iterator produced by [`Topology::path_to_root`].
pub struct PathToRoot<'a> {
    topo: &'a Topology,
    next: Option<NodeId>,
}

impl Iterator for PathToRoot<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.topo.node(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borderline_shape() {
        let t = presets::borderline();
        assert_eq!(t.n_cores(), 8);
        assert_eq!(t.name(), "borderline");
        // Machine + 4 chips + 8 cores = 13 nodes (no shared-cache level).
        assert_eq!(t.n_nodes(), 13);
        assert_eq!(t.nodes_at_level(Level::Chip).len(), 4);
        assert_eq!(t.nodes_at_level(Level::Cache).len(), 0);
        assert_eq!(t.nodes_at_level(Level::Core).len(), 8);
    }

    #[test]
    fn kwak_shape() {
        let t = presets::kwak();
        assert_eq!(t.n_cores(), 16);
        // Machine + 4 NUMA + 16 cores: chip/cache levels collapse into the
        // NUMA level because they span identical cpusets.
        assert_eq!(t.n_nodes(), 21);
        assert_eq!(t.nodes_at_level(Level::NumaNode).len(), 4);
        for id in t.nodes_at_level(Level::NumaNode) {
            assert_eq!(t.node(id).cpuset.count(), 4);
        }
    }

    #[test]
    fn path_to_root_scans_core_first() {
        let t = presets::kwak();
        let path: Vec<_> = t.path_to_root(5).collect();
        assert_eq!(t.node(path[0]).level, Level::Core);
        assert_eq!(t.node(*path.last().unwrap()).level, Level::Machine);
        for w in path.windows(2) {
            assert!(t.node(w[0]).depth > t.node(w[1]).depth);
        }
        for id in &path {
            assert!(t.node(*id).cpuset.contains(5));
        }
    }

    #[test]
    fn smallest_covering_resolves_levels() {
        let t = presets::kwak();
        let n = t.smallest_covering(&CpuSet::single(6)).unwrap();
        assert_eq!(t.node(n).level, Level::Core);
        let n = t.smallest_covering(&CpuSet::range(4..8)).unwrap();
        assert_eq!(t.node(n).level, Level::NumaNode);
        assert_eq!(t.node(n).ordinal, 1);
        let n = t.smallest_covering(&CpuSet::from_iter([0, 9])).unwrap();
        assert_eq!(t.node(n).level, Level::Machine);
        assert!(t.smallest_covering(&CpuSet::EMPTY).is_none());
        assert!(t.smallest_covering(&CpuSet::single(200)).is_none());
    }

    #[test]
    fn common_ancestor_levels() {
        let t = presets::kwak();
        assert_eq!(t.node(t.common_ancestor(0, 0)).level, Level::Core);
        assert_eq!(t.node(t.common_ancestor(0, 3)).level, Level::NumaNode);
        assert_eq!(t.node(t.common_ancestor(0, 15)).level, Level::Machine);
    }

    #[test]
    fn ancestor_at_level_lookup() {
        let t = presets::borderline();
        let leaf = t.core_node(7);
        let chip = t.ancestor_at_level(leaf, Level::Chip).unwrap();
        assert_eq!(t.node(chip).ordinal, 3);
        assert!(t.ancestor_at_level(leaf, Level::Cache).is_none());
        assert_eq!(t.ancestor_at_level(leaf, Level::Core).unwrap(), leaf);
    }

    #[test]
    fn cores_by_distance_orders_siblings_first() {
        let t = presets::kwak();
        let order = t.cores_by_distance(5, &t.all_cores());
        assert_eq!(order[0], 5, "self is nearest");
        let siblings: Vec<_> = order[1..4].to_vec();
        assert_eq!(siblings, vec![4, 6, 7]);
    }
}
