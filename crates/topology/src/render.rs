//! ASCII rendering of topology trees (the shape of the paper's Figs. 2–3).

use crate::{NodeId, Topology};
use core::fmt::Write as _;

impl Topology {
    /// Renders the tree as indented ASCII, one node per line, annotated with
    /// the queue each node would own. Reproduces the information content of
    /// the paper's Fig. 2 (hierarchical lists mapped onto a topology) and
    /// Fig. 3 (the kwak machine).
    ///
    /// ```
    /// let t = piom_topology::presets::borderline();
    /// let s = t.render_ascii();
    /// assert!(s.contains("Global Queue"));
    /// assert!(s.contains("chip #0"));
    /// ```
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} cores)", self.name, self.n_cores());
        self.render_node(self.root, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, out: &mut String) {
        let node = self.node(id);
        let indent = "  ".repeat(node.depth);
        let _ = writeln!(
            out,
            "{indent}{} #{} [cpus {}] -> {}",
            node.level,
            node.ordinal,
            node.cpuset,
            node.level.queue_name()
        );
        for &child in &node.children {
            self.render_node(child, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn render_mentions_every_level_present() {
        let s = presets::kwak().render_ascii();
        assert!(s.contains("kwak (16 cores)"));
        assert!(s.contains("Global Queue"));
        assert!(s.contains("Per-NUMA Node Queue"));
        assert!(s.contains("Per-Core Queue"));
        assert_eq!(s.lines().count(), 1 + 21);
    }

    #[test]
    fn render_borderline_has_chips_not_numa() {
        let s = presets::borderline().render_ascii();
        assert!(s.contains("Per-Chip Queue"));
        assert!(!s.contains("Per-NUMA Node Queue"));
    }
}
