//! Topological distance between cores.
//!
//! Cost models (and the nearest-idle-core offload policy, paper §IV-B) need
//! to know "how far" two cores are: same core, sharing a cache, sharing a
//! chip, sharing a NUMA node, or only sharing the machine. [`Locality`]
//! classifies a pair of cores; [`Topology::distance`] gives a small integer
//! usable as a sort key or cost-table index.

use crate::{Level, NodeId, Topology};

/// Classification of the relationship between two cores, from closest to
/// farthest. The discriminant doubles as a distance value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// The same core.
    SelfCore = 0,
    /// Different cores sharing a cache.
    SharedCache = 1,
    /// Different cores on the same chip (no shared cache level between them).
    SameChip = 2,
    /// Different chips within the same NUMA node.
    SameNuma = 3,
    /// Different NUMA nodes: traffic crosses the interconnect.
    CrossNuma = 4,
}

impl Locality {
    /// Distance value (0 = same core, 4 = cross-NUMA).
    #[inline]
    pub fn distance(self) -> usize {
        self as usize
    }
}

impl Topology {
    /// Locality class of the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if either core id is out of range.
    pub fn locality(&self, a: usize, b: usize) -> Locality {
        if a == b {
            return Locality::SelfCore;
        }
        let anc = self.common_ancestor(a, b);
        match self.node(anc).level {
            Level::Core => Locality::SelfCore,
            Level::Cache => Locality::SharedCache,
            Level::Chip => Locality::SameChip,
            Level::NumaNode => Locality::SameNuma,
            Level::Machine => {
                // On machines with a single NUMA node the root *is* the only
                // memory domain; treat root-level meetings as cross-NUMA only
                // when the tree actually has NUMA nodes. Short-circuiting
                // scan (a NUMA node sits right after the root in the arena)
                // keeps this O(1) on multi-socket fabrics — `distance` is
                // the inner loop of the steal/wake order precomputation.
                if self.iter().any(|(_, n)| n.level == Level::NumaNode) {
                    Locality::CrossNuma
                } else {
                    Locality::SameNuma
                }
            }
        }
    }

    /// Integer distance between two cores (see [`Locality::distance`]).
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.locality(a, b).distance()
    }

    /// Full `n_cores x n_cores` distance matrix. Row-major.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.n_cores();
        (0..n)
            .map(|a| (0..n).map(|b| self.distance(a, b)).collect())
            .collect()
    }

    /// Victim order for work stealing from `core`: every node *not* on
    /// `core`'s path to the root (those queues were already scanned by
    /// Algorithm 1), sorted nearest-first.
    ///
    /// "Nearest" is the [`Locality`] distance from `core` to the closest
    /// core the node spans, so a thief visits its siblings' Per-Core Queues
    /// before crossing a chip and long before crossing the NUMA
    /// interconnect — lock traffic from stealing stays as local as the
    /// hierarchy itself. Ties prefer deeper nodes (a sibling's Per-Core
    /// Queue over the cache queue spanning it), then lower node ids, so
    /// the order is fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn steal_order(&self, core: usize) -> Vec<NodeId> {
        self.steal_order_with_distance(core)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// [`steal_order`](Self::steal_order) annotated with each victim's
    /// [`Locality`] distance from `core`.
    ///
    /// The distance partitions the order into *tiers* of equally-near
    /// victims (a NUMA node's sibling per-core queues, for example). A
    /// scheduler is free to re-rank victims **within** a tier by a runtime
    /// signal — the task manager probes deeper backlogs first, so a thief
    /// skips hot-but-empty neighbours without ever paying a farther tier's
    /// interconnect crossing prematurely.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn steal_order_with_distance(&self, core: usize) -> Vec<(NodeId, usize)> {
        let on_path: Vec<NodeId> = self.path_to_root(core).collect();
        let mut victims: Vec<(NodeId, usize)> = self
            .node_ids()
            .filter(|id| !on_path.contains(id))
            .map(|id| (id, self.nearest_span_distance(core, &self.node(id).cpuset)))
            .collect();
        victims.sort_by_key(|&(id, nearest)| {
            (nearest, core::cmp::Reverse(self.node(id).depth), id.index())
        });
        victims
    }

    /// Every core of the machine sorted by increasing [`Locality`] distance
    /// from node `id`'s span (the distance to the *nearest* core the node
    /// covers; ties broken by core id). Cores inside the span come first,
    /// at distance 0.
    ///
    /// This is the steal-wake counterpart of
    /// [`steal_order_with_distance`](Self::steal_order_with_distance): that
    /// method ranks *victim queues* around a thief core, while this one
    /// ranks *candidate thieves* around a backlogged queue. The task
    /// manager precomputes it per queue at construction so
    /// [`wake_for_steal`](../pioman) can pick the nearest parked worker
    /// with a single ordered scan.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside this topology's arena.
    pub fn cores_by_distance_from_node(&self, id: NodeId) -> Vec<usize> {
        let span = self.node(id).cpuset;
        let mut cores: Vec<usize> = (0..self.n_cores()).collect();
        // The key costs O(|span|); cache it per core instead of recomputing
        // on every comparison — the manager ranks thieves around *every*
        // queue at construction, which is quadratic-ish on a 1024-core
        // fabric without the cache.
        cores.sort_by_cached_key(|&c| (self.nearest_span_distance(c, &span), c));
        cores
    }

    /// The [`Locality`] distance from `origin` to the *nearest* in-range
    /// core of `span` (`usize::MAX` for an empty/foreign span) — the
    /// shared kernel of [`steal_order_with_distance`](Self::
    /// steal_order_with_distance) (ranking victim queues around a thief)
    /// and [`cores_by_distance_from_node`](Self::
    /// cores_by_distance_from_node) (ranking candidate thieves around a
    /// queue), so the two orders can never disagree on what "near" means.
    fn nearest_span_distance(&self, origin: usize, span: &piom_cpuset::CpuSet) -> usize {
        span.iter()
            .filter(|&c| c < self.n_cores())
            .map(|c| self.distance(origin, c))
            .min()
            .unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn kwak_localities() {
        let t = presets::kwak();
        assert_eq!(t.locality(3, 3), Locality::SelfCore);
        // Cores 0..4 share NUMA node (chip+cache collapsed into it).
        assert_eq!(t.locality(0, 3), Locality::SameNuma);
        assert_eq!(t.locality(0, 4), Locality::CrossNuma);
        assert_eq!(t.locality(12, 15), Locality::SameNuma);
    }

    #[test]
    fn borderline_localities() {
        let t = presets::borderline();
        // Single NUMA domain: chip siblings are SameChip, strangers SameNuma.
        assert_eq!(t.locality(0, 1), Locality::SameChip);
        assert_eq!(t.locality(0, 2), Locality::SameNuma);
        assert_eq!(t.locality(6, 7), Locality::SameChip);
    }

    #[test]
    fn cache_level_detected() {
        let t = crate::TopologyBuilder::new("c")
            .numa_nodes(2)
            .caches_per_chip(2)
            .cores_per_cache(2)
            .build();
        assert_eq!(t.locality(0, 1), Locality::SharedCache);
        // Cores 0 and 2: different caches, chip collapsed -> meet at NUMA.
        assert_eq!(t.locality(0, 2), Locality::SameNuma);
        assert_eq!(t.locality(0, 4), Locality::CrossNuma);
    }

    #[test]
    fn steal_order_visits_siblings_before_remote_nodes() {
        let t = presets::kwak();
        let order = t.steal_order(5);
        // No node on core 5's own path appears.
        for id in t.path_to_root(5) {
            assert!(!order.contains(&id), "own path must not be a victim");
        }
        // Every other node appears exactly once.
        assert_eq!(order.len(), t.n_nodes() - t.path_to_root(5).count());
        // The first victims are the sibling per-core queues on NUMA #1
        // (cores 4, 6, 7), in core order.
        let first_cores: Vec<_> = order
            .iter()
            .take(3)
            .map(|&id| t.node(id).cpuset.first().unwrap())
            .collect();
        assert_eq!(first_cores, vec![4, 6, 7]);
        // Victims never get closer again as we walk the list.
        let dist_of = |id: &NodeId| {
            t.node(*id)
                .cpuset
                .iter()
                .map(|c| t.distance(5, c))
                .min()
                .unwrap()
        };
        for w in order.windows(2) {
            assert!(dist_of(&w[0]) <= dist_of(&w[1]));
        }
    }

    #[test]
    fn steal_order_prefers_deeper_nodes_on_ties() {
        let t = presets::borderline();
        // From core 0, its chip sibling core 1's per-core queue must come
        // before any other chip's node.
        let order = t.steal_order(0);
        assert_eq!(t.node(order[0]).cpuset.first().unwrap(), 1);
        assert_eq!(t.node(order[0]).level, Level::Core);
    }

    #[test]
    fn steal_order_with_distance_matches_and_tiers_are_monotone() {
        let t = presets::kwak();
        for core in [0, 5, 15] {
            let plain = t.steal_order(core);
            let annotated = t.steal_order_with_distance(core);
            assert_eq!(
                plain,
                annotated.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                "annotated order must agree with the plain one"
            );
            for (id, d) in &annotated {
                let nearest = t
                    .node(*id)
                    .cpuset
                    .iter()
                    .map(|c| t.distance(core, c))
                    .min()
                    .unwrap();
                assert_eq!(*d, nearest, "distance annotation is the tier key");
            }
            for w in annotated.windows(2) {
                assert!(w[0].1 <= w[1].1, "tiers never get closer again");
            }
        }
    }

    #[test]
    fn cores_by_distance_from_node_ranks_span_first_then_outward() {
        let t = presets::kwak();
        // NUMA #1 spans cores 4-7: its own cores lead (distance 0, id
        // order), every other core follows at CrossNuma distance in id
        // order, and the ranking never gets closer again.
        let numa1 = t.core_node(5); // per-core node of 5…
        let numa1 = t.node(numa1).parent.unwrap(); // …whose parent is NUMA #1
        let order = t.cores_by_distance_from_node(numa1);
        assert_eq!(order.len(), t.n_cores());
        assert_eq!(&order[..4], &[4, 5, 6, 7], "span cores first");
        let span = t.node(numa1).cpuset;
        let dist = |c: usize| span.iter().map(|s| t.distance(c, s)).min().unwrap();
        for w in order.windows(2) {
            assert!(dist(w[0]) <= dist(w[1]), "ordering must be monotone");
        }
        // A per-core node: the core itself leads, NUMA siblings next.
        let core3 = t.core_node(3);
        let order = t.cores_by_distance_from_node(core3);
        assert_eq!(order[0], 3);
        assert_eq!(&order[1..4], &[0, 1, 2], "same-NUMA siblings before remote");
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let t = presets::kwak();
        let m = t.distance_matrix();
        for (a, row) in m.iter().enumerate() {
            assert_eq!(row[a], 0);
            for (b, &d) in row.iter().enumerate() {
                assert_eq!(d, m[b][a]);
            }
        }
    }
}
