//! Parsing of Linux-style `cpulist` strings (e.g. `0-3,8,10-11`).

use crate::CpuSet;
use core::fmt;
use core::str::FromStr;

/// Error returned when parsing a cpulist string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCpuSetError {
    /// A component was not a number or `a-b` range.
    InvalidComponent(String),
    /// A range had `start > end`.
    ReversedRange(usize, usize),
    /// A CPU id was `>= CpuSet::MAX_CPUS`.
    OutOfRange(usize),
}

impl fmt::Display for ParseCpuSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCpuSetError::InvalidComponent(s) => {
                write!(f, "invalid cpulist component: {s:?}")
            }
            ParseCpuSetError::ReversedRange(a, b) => {
                write!(f, "reversed cpu range: {a}-{b}")
            }
            ParseCpuSetError::OutOfRange(cpu) => {
                write!(f, "cpu id {cpu} exceeds maximum {}", CpuSet::MAX_CPUS - 1)
            }
        }
    }
}

impl std::error::Error for ParseCpuSetError {}

impl FromStr for CpuSet {
    type Err = ParseCpuSetError;

    /// Parses a Linux `cpulist`: comma-separated CPU ids or inclusive ranges.
    /// The empty string (or all-whitespace) parses to the empty set.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut set = CpuSet::new();
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Ok(set);
        }
        for comp in trimmed.split(',') {
            let comp = comp.trim();
            if comp.is_empty() {
                return Err(ParseCpuSetError::InvalidComponent(comp.to_owned()));
            }
            let parse_id = |t: &str| -> Result<usize, ParseCpuSetError> {
                let id: usize = t
                    .trim()
                    .parse()
                    .map_err(|_| ParseCpuSetError::InvalidComponent(comp.to_owned()))?;
                if id >= CpuSet::MAX_CPUS {
                    return Err(ParseCpuSetError::OutOfRange(id));
                }
                Ok(id)
            };
            match comp.split_once('-') {
                Some((a, b)) => {
                    let (start, end) = (parse_id(a)?, parse_id(b)?);
                    if start > end {
                        return Err(ParseCpuSetError::ReversedRange(start, end));
                    }
                    for cpu in start..=end {
                        set.insert(cpu);
                    }
                }
                None => {
                    set.insert(parse_id(comp)?);
                }
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_singletons_and_ranges() {
        let s: CpuSet = "0-3,8,10-11".parse().unwrap();
        assert_eq!(s, CpuSet::from_iter([0, 1, 2, 3, 8, 10, 11]));
    }

    #[test]
    fn parses_empty() {
        assert_eq!("".parse::<CpuSet>().unwrap(), CpuSet::EMPTY);
        assert_eq!("  ".parse::<CpuSet>().unwrap(), CpuSet::EMPTY);
    }

    #[test]
    fn tolerates_spaces() {
        let s: CpuSet = " 1 , 3 - 5 ".parse().unwrap();
        assert_eq!(s, CpuSet::from_iter([1, 3, 4, 5]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            "a,b".parse::<CpuSet>(),
            Err(ParseCpuSetError::InvalidComponent(_))
        ));
        assert!(matches!(
            "1,,2".parse::<CpuSet>(),
            Err(ParseCpuSetError::InvalidComponent(_))
        ));
    }

    #[test]
    fn rejects_reversed_range() {
        assert_eq!(
            "5-2".parse::<CpuSet>(),
            Err(ParseCpuSetError::ReversedRange(5, 2))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            "9999".parse::<CpuSet>(),
            Err(ParseCpuSetError::OutOfRange(9999))
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        let s = CpuSet::from_iter([0, 2, 3, 4, 60, 64, 65, 255]);
        let text = s.to_string();
        assert_eq!(text.parse::<CpuSet>().unwrap(), s);
    }
}
