//! CPU sets for expressing task affinity.
//!
//! PIOMan tasks carry a *CPU set* restricting which cores may execute them
//! (Trahay & Denis, CLUSTER 2009, §III). This crate provides [`CpuSet`], a
//! fixed-size bitmask over logical CPU identifiers, with the set algebra the
//! scheduler needs to resolve a CPU set to the smallest covering topology
//! level: subset tests, intersection/union, iteration, and population counts.
//!
//! The mask is sixteen 64-bit words wide, i.e. up to [`CpuSet::MAX_CPUS`]
//! (1024) CPUs — wide enough for the simulated multi-socket fabrics of the
//! NUMA-scale stealing study (256–1024 cores) while keeping the type `Copy`
//! and allocation-free (a requirement inherited from the paper's embedding
//! of task structs inside packet wrappers, §IV-B). At 128 bytes a set is
//! still two cache lines; everything hot path-sensitive (the scheduler's
//! steal spans) mirrors the word layout atomically rather than copying
//! sets around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

mod iter;
mod parse;

pub use iter::CpuIter;
pub use parse::ParseCpuSetError;

/// Number of 64-bit words backing a [`CpuSet`].
pub(crate) const WORDS: usize = 16;

/// A fixed-size set of logical CPU identifiers.
///
/// `CpuSet` is a value type: all operations are by value or shared reference,
/// it is `Copy`, and it never allocates. CPU ids are `usize` in the range
/// `0..CpuSet::MAX_CPUS`.
///
/// # Examples
///
/// ```
/// use piom_cpuset::CpuSet;
///
/// let a = CpuSet::from_iter([0, 1, 2, 3]);
/// let b = CpuSet::range(2..6);
/// assert_eq!(a & b, CpuSet::from_iter([2, 3]));
/// assert!(a.contains(1));
/// assert!(!a.is_subset(&b));
/// assert_eq!((a | b).count(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuSet {
    words: [u64; WORDS],
}

impl CpuSet {
    /// Maximum number of CPUs representable (ids `0..MAX_CPUS`).
    pub const MAX_CPUS: usize = WORDS * 64;

    /// The empty set.
    pub const EMPTY: CpuSet = CpuSet { words: [0; WORDS] };

    /// The full set containing every representable CPU id.
    pub const FULL: CpuSet = CpuSet {
        words: [u64::MAX; WORDS],
    };

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set containing a single CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= CpuSet::MAX_CPUS`.
    #[inline]
    pub const fn single(cpu: usize) -> Self {
        assert!(cpu < Self::MAX_CPUS, "cpu id out of range");
        let mut words = [0u64; WORDS];
        words[cpu / 64] = 1u64 << (cpu % 64);
        CpuSet { words }
    }

    /// Creates a set containing every CPU in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds [`CpuSet::MAX_CPUS`].
    pub fn range(range: core::ops::Range<usize>) -> Self {
        assert!(range.end <= Self::MAX_CPUS, "cpu range out of bounds");
        let mut set = Self::new();
        for cpu in range {
            set.insert(cpu);
        }
        set
    }

    /// Creates a set of the first `n` CPUs (`0..n`).
    pub fn first_n(n: usize) -> Self {
        Self::range(0..n)
    }

    /// Inserts `cpu`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= CpuSet::MAX_CPUS`.
    #[inline]
    pub fn insert(&mut self, cpu: usize) -> bool {
        assert!(cpu < Self::MAX_CPUS, "cpu id out of range");
        let word = &mut self.words[cpu / 64];
        let bit = 1u64 << (cpu % 64);
        let was_absent = *word & bit == 0;
        *word |= bit;
        was_absent
    }

    /// Removes `cpu`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, cpu: usize) -> bool {
        if cpu >= Self::MAX_CPUS {
            return false;
        }
        let word = &mut self.words[cpu / 64];
        let bit = 1u64 << (cpu % 64);
        let was_present = *word & bit != 0;
        *word &= !bit;
        was_present
    }

    /// Returns `true` if `cpu` is in the set.
    #[inline]
    pub const fn contains(&self, cpu: usize) -> bool {
        if cpu >= Self::MAX_CPUS {
            return false;
        }
        self.words[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        let mut i = 0;
        while i < WORDS {
            if self.words[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Number of CPUs in the set.
    #[inline]
    pub const fn count(&self) -> usize {
        let mut total = 0u32;
        let mut i = 0;
        while i < WORDS {
            total += self.words[i].count_ones();
            i += 1;
        }
        total as usize
    }

    /// Lowest CPU id in the set, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (i, word) in self.words.iter().enumerate() {
            if *word != 0 {
                return Some(i * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Highest CPU id in the set, if any.
    #[inline]
    pub fn last(&self) -> Option<usize> {
        for (i, word) in self.words.iter().enumerate().rev() {
            if *word != 0 {
                return Some(i * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    /// Returns `true` if `self` is a subset of `other` (not necessarily proper).
    #[inline]
    pub fn is_subset(&self, other: &CpuSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self` is a superset of `other`.
    #[inline]
    pub fn is_superset(&self, other: &CpuSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the two sets share no CPU.
    #[inline]
    pub fn is_disjoint(&self, other: &CpuSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if the two sets share at least one CPU.
    #[inline]
    pub fn intersects(&self, other: &CpuSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        out
    }

    /// Symmetric difference.
    #[inline]
    pub fn symmetric_difference(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        out
    }

    /// Iterator over CPU ids in ascending order.
    #[inline]
    pub fn iter(&self) -> CpuIter {
        CpuIter::new(self.words)
    }

    /// The CPU in the set nearest to `origin` by |id difference|, preferring
    /// the lower id on ties. Used by the submission-offload policy ("find the
    /// nearest idle core", paper §IV-B) as an id-distance fallback when no
    /// topology is available.
    pub fn nearest(&self, origin: usize) -> Option<usize> {
        self.iter().min_by_key(|&cpu| {
            let dist = cpu.abs_diff(origin);
            (dist, cpu)
        })
    }

    /// Access to the raw backing words (for hashing / FFI-style uses).
    #[inline]
    pub const fn as_words(&self) -> &[u64; WORDS] {
        &self.words
    }

    /// Builds a set from raw backing words.
    #[inline]
    pub const fn from_words(words: [u64; WORDS]) -> Self {
        CpuSet { words }
    }
}

impl FromIterator<usize> for CpuSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = CpuSet::new();
        for cpu in iter {
            set.insert(cpu);
        }
        set
    }
}

impl IntoIterator for CpuSet {
    type Item = usize;
    type IntoIter = CpuIter;
    fn into_iter(self) -> CpuIter {
        self.iter()
    }
}

impl IntoIterator for &CpuSet {
    type Item = usize;
    type IntoIter = CpuIter;
    fn into_iter(self) -> CpuIter {
        self.iter()
    }
}

impl core::ops::BitAnd for CpuSet {
    type Output = CpuSet;
    fn bitand(self, rhs: CpuSet) -> CpuSet {
        self.intersection(&rhs)
    }
}

impl core::ops::BitOr for CpuSet {
    type Output = CpuSet;
    fn bitor(self, rhs: CpuSet) -> CpuSet {
        self.union(&rhs)
    }
}

impl core::ops::BitXor for CpuSet {
    type Output = CpuSet;
    fn bitxor(self, rhs: CpuSet) -> CpuSet {
        self.symmetric_difference(&rhs)
    }
}

impl core::ops::Sub for CpuSet {
    type Output = CpuSet;
    fn sub(self, rhs: CpuSet) -> CpuSet {
        self.difference(&rhs)
    }
}

impl core::ops::BitAndAssign for CpuSet {
    fn bitand_assign(&mut self, rhs: CpuSet) {
        *self = self.intersection(&rhs);
    }
}

impl core::ops::BitOrAssign for CpuSet {
    fn bitor_assign(&mut self, rhs: CpuSet) {
        *self = self.union(&rhs);
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{{}}}", self)
    }
}

/// Formats as a compact cpulist, e.g. `0-3,8,10-11` (Linux `cpulist` syntax).
impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut run_start: Option<usize> = None;
        let mut prev: Option<usize> = None;
        let flush = |f: &mut fmt::Formatter<'_>,
                     start: usize,
                     end: usize,
                     first: &mut bool|
         -> fmt::Result {
            if !*first {
                write!(f, ",")?;
            }
            *first = false;
            if start == end {
                write!(f, "{start}")
            } else {
                write!(f, "{start}-{end}")
            }
        };
        for cpu in self.iter() {
            match (run_start, prev) {
                (Some(start), Some(p)) if cpu == p + 1 => {
                    let _ = start;
                }
                (Some(start), Some(p)) => {
                    flush(f, start, p, &mut first)?;
                    run_start = Some(cpu);
                }
                _ => run_start = Some(cpu),
            }
            prev = Some(cpu);
        }
        if let (Some(start), Some(p)) = (run_start, prev) {
            flush(f, start, p, &mut first)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert!(CpuSet::EMPTY.is_empty());
        assert_eq!(CpuSet::EMPTY.count(), 0);
        assert_eq!(CpuSet::FULL.count(), CpuSet::MAX_CPUS);
        assert!(CpuSet::EMPTY.is_subset(&CpuSet::FULL));
        assert!(CpuSet::FULL.is_superset(&CpuSet::EMPTY));
    }

    #[test]
    fn single_membership() {
        for cpu in [0, 1, 63, 64, 127, 128, 255] {
            let s = CpuSet::single(cpu);
            assert_eq!(s.count(), 1);
            assert!(s.contains(cpu));
            assert_eq!(s.first(), Some(cpu));
            assert_eq!(s.last(), Some(cpu));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        let _ = CpuSet::single(CpuSet::MAX_CPUS);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = CpuSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert reports already present");
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5), "second remove reports already absent");
        assert!(s.is_empty());
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = CpuSet::FULL;
        assert!(!s.remove(CpuSet::MAX_CPUS));
        assert!(!s.remove(usize::MAX));
        assert_eq!(s.count(), CpuSet::MAX_CPUS);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!CpuSet::FULL.contains(CpuSet::MAX_CPUS));
    }

    #[test]
    fn range_construction() {
        let s = CpuSet::range(4..12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.first(), Some(4));
        assert_eq!(s.last(), Some(11));
        assert!(CpuSet::range(7..7).is_empty());
    }

    #[test]
    fn cross_word_range() {
        let s = CpuSet::range(60..70);
        assert_eq!(s.count(), 10);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), (60..70).collect::<Vec<_>>());
    }

    #[test]
    fn algebra_basics() {
        let a = CpuSet::from_iter([0, 1, 2, 3]);
        let b = CpuSet::from_iter([2, 3, 4, 5]);
        assert_eq!(a & b, CpuSet::from_iter([2, 3]));
        assert_eq!(a | b, CpuSet::range(0..6));
        assert_eq!(a - b, CpuSet::from_iter([0, 1]));
        assert_eq!(a ^ b, CpuSet::from_iter([0, 1, 4, 5]));
    }

    #[test]
    fn subset_superset_disjoint() {
        let small = CpuSet::from_iter([1, 2]);
        let big = CpuSet::range(0..8);
        assert!(small.is_subset(&big));
        assert!(big.is_superset(&small));
        assert!(!big.is_subset(&small));
        assert!(small.is_disjoint(&CpuSet::from_iter([3, 4])));
        assert!(small.intersects(&CpuSet::from_iter([2, 9])));
    }

    #[test]
    fn first_last_across_words() {
        let s = CpuSet::from_iter([70, 130, 200]);
        assert_eq!(s.first(), Some(70));
        assert_eq!(s.last(), Some(200));
    }

    #[test]
    fn nearest_prefers_smallest_distance_then_lowest_id() {
        let s = CpuSet::from_iter([2, 6, 10]);
        assert_eq!(s.nearest(0), Some(2));
        assert_eq!(s.nearest(6), Some(6));
        // ids 2 and 10 are both at distance 4 from 6 once 6 is removed.
        let s2 = CpuSet::from_iter([2, 10]);
        assert_eq!(s2.nearest(6), Some(2), "tie broken toward lower id");
        assert_eq!(CpuSet::EMPTY.nearest(3), None);
    }

    #[test]
    fn display_compacts_runs() {
        let s = CpuSet::from_iter([0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(s.to_string(), "0-3,8,10-11");
        assert_eq!(CpuSet::EMPTY.to_string(), "");
        assert_eq!(CpuSet::single(7).to_string(), "7");
    }

    #[test]
    fn bitassign_operators() {
        let mut s = CpuSet::from_iter([0, 1]);
        s |= CpuSet::single(2);
        assert_eq!(s, CpuSet::range(0..3));
        s &= CpuSet::from_iter([1, 2, 3]);
        assert_eq!(s, CpuSet::from_iter([1, 2]));
    }

    #[test]
    fn words_roundtrip() {
        let s = CpuSet::from_iter([3, 64, 190]);
        let w = *s.as_words();
        assert_eq!(CpuSet::from_words(w), s);
    }
}
