//! Iteration over the CPU ids of a [`CpuSet`](crate::CpuSet).

use crate::WORDS;

/// Ascending iterator over the CPU ids contained in a `CpuSet`.
///
/// Produced by [`CpuSet::iter`](crate::CpuSet::iter). The iterator is a
/// snapshot: it owns a copy of the backing words, so mutating the original
/// set during iteration has no effect on it.
#[derive(Clone, Debug)]
pub struct CpuIter {
    words: [u64; WORDS],
    /// Index of the word currently being drained.
    word_idx: usize,
}

impl CpuIter {
    pub(crate) fn new(words: [u64; WORDS]) -> Self {
        CpuIter { words, word_idx: 0 }
    }
}

impl Iterator for CpuIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word_idx < self.words.len() {
            let word = &mut self.words[self.word_idx];
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: u32 = self.words[self.word_idx..]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        (remaining as usize, Some(remaining as usize))
    }
}

impl ExactSizeIterator for CpuIter {}
impl core::iter::FusedIterator for CpuIter {}

#[cfg(test)]
mod tests {
    use crate::CpuSet;

    #[test]
    fn iterates_in_ascending_order() {
        let s = CpuSet::from_iter([200, 0, 64, 3, 127]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 127, 200]);
    }

    #[test]
    fn exact_size() {
        let s = CpuSet::range(10..50);
        let mut it = s.iter();
        assert_eq!(it.len(), 40);
        it.next();
        assert_eq!(it.len(), 39);
    }

    #[test]
    fn fused_after_exhaustion() {
        let mut it = CpuSet::single(1).iter();
        assert_eq!(it.next(), Some(1));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn empty_iterates_nothing() {
        assert_eq!(CpuSet::EMPTY.iter().count(), 0);
    }
}
