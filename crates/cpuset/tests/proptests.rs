//! Property-based tests for CpuSet algebra laws.

use piom_cpuset::CpuSet;
use proptest::prelude::*;

fn arb_cpuset() -> impl Strategy<Value = CpuSet> {
    proptest::collection::vec(0usize..CpuSet::MAX_CPUS, 0..64).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn union_commutes(a in arb_cpuset(), b in arb_cpuset()) {
        prop_assert_eq!(a | b, b | a);
    }

    #[test]
    fn intersection_commutes(a in arb_cpuset(), b in arb_cpuset()) {
        prop_assert_eq!(a & b, b & a);
    }

    #[test]
    fn union_associates(a in arb_cpuset(), b in arb_cpuset(), c in arb_cpuset()) {
        prop_assert_eq!((a | b) | c, a | (b | c));
    }

    #[test]
    fn intersection_distributes_over_union(
        a in arb_cpuset(), b in arb_cpuset(), c in arb_cpuset()
    ) {
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
    }

    #[test]
    fn de_morgan_via_difference(a in arb_cpuset(), b in arb_cpuset()) {
        // FULL \ (a ∪ b) == (FULL \ a) ∩ (FULL \ b)
        prop_assert_eq!(
            CpuSet::FULL - (a | b),
            (CpuSet::FULL - a) & (CpuSet::FULL - b)
        );
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_cpuset(), b in arb_cpuset()) {
        prop_assert_eq!(a.is_subset(&b), (a | b) == b);
    }

    #[test]
    fn count_inclusion_exclusion(a in arb_cpuset(), b in arb_cpuset()) {
        prop_assert_eq!(
            (a | b).count() + (a & b).count(),
            a.count() + b.count()
        );
    }

    #[test]
    fn xor_is_union_minus_intersection(a in arb_cpuset(), b in arb_cpuset()) {
        prop_assert_eq!(a ^ b, (a | b) - (a & b));
    }

    #[test]
    fn iter_sorted_and_member(a in arb_cpuset()) {
        let v: Vec<_> = a.iter().collect();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(v.len(), a.count());
        for cpu in &v {
            prop_assert!(a.contains(*cpu));
        }
    }

    #[test]
    fn display_parse_roundtrip(a in arb_cpuset()) {
        let parsed: CpuSet = a.to_string().parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn insert_remove_restores(a in arb_cpuset(), cpu in 0usize..CpuSet::MAX_CPUS) {
        let mut s = a;
        let was_present = s.contains(cpu);
        s.insert(cpu);
        prop_assert!(s.contains(cpu));
        if !was_present {
            s.remove(cpu);
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn first_last_consistent(a in arb_cpuset()) {
        match (a.first(), a.last()) {
            (Some(f), Some(l)) => {
                prop_assert!(f <= l);
                prop_assert!(a.contains(f));
                prop_assert!(a.contains(l));
            }
            (None, None) => prop_assert!(a.is_empty()),
            _ => prop_assert!(false, "first/last disagree"),
        }
    }

    #[test]
    fn nearest_is_member_and_minimal(a in arb_cpuset(), origin in 0usize..CpuSet::MAX_CPUS) {
        if let Some(n) = a.nearest(origin) {
            prop_assert!(a.contains(n));
            for cpu in a.iter() {
                prop_assert!(n.abs_diff(origin) <= cpu.abs_diff(origin));
            }
        } else {
            prop_assert!(a.is_empty());
        }
    }
}
