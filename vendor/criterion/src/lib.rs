//! Offline API-compatible shim for `criterion` 0.5.
//!
//! The workspace builds without registry access, so the Criterion surface
//! its benches use is vendored here: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated loop reporting mean ns/iter — enough to compare runs
//! by hand and to keep `cargo bench` meaningful, without the real crate's
//! statistics, plotting, or baseline management. Swap for
//! `criterion = "0.5"` when a registry is reachable.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (forwards to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 100,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 100, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Ends the group (drop also suffices; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration: grow the iteration count until one sample run
    // takes ~2ms, so short routines aren't drowned in timer noise.
    loop {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || b.iters >= 1 << 20 {
            break;
        }
        b.iters *= 4;
    }
    // Measurement: `sample_size` samples of `iters` iterations each.
    let mut total = Duration::ZERO;
    let mut total_iters: u128 = 0;
    for _ in 0..sample_size.max(1) {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        total += b.elapsed;
        total_iters += u128::from(b.iters);
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("  {id:<32} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut spent = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            spent += start.elapsed();
        }
        self.elapsed += spent;
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_accumulates_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
