//! Offline API-compatible shim for `proptest` 1.x.
//!
//! This workspace builds without registry access, so the subset of proptest
//! its property tests use is vendored here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], integer
//!   range strategies, tuple strategies, `any::<T>()`;
//! * [`collection::vec`] for variable-length `Vec` generation;
//! * [`test_runner::ProptestConfig`] (`cases` only).
//!
//! Differences from the real crate, by design:
//!
//! * **deterministic**: cases derive from a fixed per-test seed (FNV of the
//!   test name), so every run explores the same inputs — CI is reproducible;
//! * **no shrinking**: a failing case panics with the values' `Debug`
//!   rendering (the seed regenerates it exactly, so shrinking is a
//!   convenience, not a requirement);
//! * `prop_assert*` panics instead of returning `Err(TestCaseError)`.
//!
//! Swap for `proptest = "1"` when a registry is reachable.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares deterministic property tests.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, v in arb_thing()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                // Render inputs before the body may consume them, so a
                // failure can report the (deterministically regenerable)
                // case. Strategy values are Debug, as in the real crate.
                let __case_inputs = ::std::format!("{:?}", ($(&$arg,)*));
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest: {} failed at case {case}/{} with inputs {}",
                        stringify!($name),
                        config.cases,
                        __case_inputs,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test (shim: panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Picks uniformly among same-typed strategies.
///
/// The real macro also supports weights and heterogeneous arms (boxing the
/// values); the workspace only unions same-typed arms, so the shim requires
/// that.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 5u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn map_and_tuples_compose(
            v in crate::collection::vec((0u32..10, 0u32..10).prop_map(|(a, b)| a + b), 1..8)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x <= 18);
            }
        }

        #[test]
        fn oneof_picks_an_arm(x in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in any::<u64>()) {
            // Just exercising the config-bearing grammar arm.
        }
    }

    #[test]
    fn determinism_across_runs() {
        let collect = || {
            let mut rng = crate::test_runner::TestRng::for_test("determinism");
            (0..32)
                .map(|_| Strategy::generate(&(0u64..1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = crate::test_runner::TestRng::for_test("bools");
        let vals: Vec<bool> = (0..64)
            .map(|_| Strategy::generate(&any::<bool>(), &mut rng))
            .collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
