//! Value-generation strategies (shim: generate-only, no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// The real crate's `Strategy` produces shrinkable value trees; this shim
/// keeps only generation, which is all deterministic-seed testing needs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` builds from the
    /// drawn value (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (shim of the real crate's `BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over `arms`; must be nonempty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (whole domain, uniformly).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}
signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
