//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block (shim: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches the real crate's default.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator state: SplitMix64 seeded from the test name, so
/// every run of a given test explores the identical input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a hash).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Vigna).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
