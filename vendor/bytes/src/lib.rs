//! Offline API-compatible shim for the `bytes` crate (1.x).
//!
//! Provides the subset this workspace uses: [`Bytes`] (cheaply-cloneable
//! shared byte buffer), [`BytesMut`] (growable builder that freezes into
//! `Bytes`), and the [`Buf`]/[`BufMut`] cursor traits with the big-endian
//! fixed-width accessors. Swap for `bytes = "1"` when a registry is
//! reachable.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones share the underlying allocation; [`Buf`] reads advance a
/// per-handle window without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` viewing a static slice (shim: copies the slice).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Copies the given slice into a freshly allocated `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Length in bytes of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range (shares the buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.buf {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source. Fixed-width accessors are big-endian,
/// matching the real crate's `get_*` defaults.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`. Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_fixed(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`. Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_fixed(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies exactly `dst.len()` bytes out, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_fixed(dst);
    }

    #[doc(hidden)]
    fn copy_fixed(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink. Fixed-width writers are
/// big-endian, matching the real crate's `put_*` defaults.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        let mut raw = b.freeze();
        assert_eq!(raw.len(), 13);
        assert_eq!(raw.get_u8(), 7);
        assert_eq!(raw.get_u32(), 0xDEAD_BEEF);
        assert_eq!(raw.get_u64(), 0x0123_4567_89AB_CDEF);
        assert!(raw.is_empty());
    }

    #[test]
    fn clones_share_and_slices_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let mut c = s.clone();
        c.advance(1);
        assert_eq!(c.as_ref(), &[3, 4]);
        assert_eq!(
            s.as_ref(),
            &[2, 3, 4],
            "clone advance must not affect source"
        );
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::from(vec![1, 2]));
        assert_ne!(Bytes::from(vec![1, 2]), Bytes::from(vec![1, 3]));
        assert_eq!(Bytes::from_static(b"ab"), Bytes::from(b"ab".to_vec()));
    }
}
