//! Offline API-compatible shim for the `bytes` crate (1.x).
//!
//! Provides the subset this workspace uses: [`Bytes`] (cheaply-cloneable
//! shared byte buffer), [`BytesMut`] (growable builder that freezes into
//! `Bytes`), the [`Buf`]/[`BufMut`] cursor traits with the big-endian
//! fixed-width accessors, and [`Rope`] — a segmented byte sequence that
//! chains `Bytes` without copying (the shim's stand-in for the real
//! crate's `Buf::chain`, shaped for the message-path use in
//! `crates/newmad`). Swap for `bytes = "1"` when a registry is reachable.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones share the underlying allocation; [`Buf`] reads advance a
/// per-handle window without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` viewing a static slice (shim: copies the slice).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Copies the given slice into a freshly allocated `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        // Arc::from(&[u8]) allocates the shared buffer directly; going
        // through Vec would pay a second allocation on the move into Arc.
        let end = slice.len();
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end,
        }
    }

    /// Splits the first `at` bytes off into a new `Bytes`, leaving `self`
    /// with the remainder. Both handles share the allocation (zero-copy).
    ///
    /// Panics if `at > len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Length in bytes of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range (shares the buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.buf {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source. Fixed-width accessors are big-endian,
/// matching the real crate's `get_*` defaults.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`. Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_fixed(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`. Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_fixed(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies exactly `dst.len()` bytes out, advancing. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        self.copy_fixed(dst);
    }

    #[doc(hidden)]
    fn copy_fixed(&mut self, dst: &mut [u8]) {
        // A segmented source (e.g. [`Rope`]) may expose the requested
        // bytes across several chunks; loop rather than assume the first
        // chunk covers the read.
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let take = chunk.len().min(dst.len() - filled);
            dst[filled..filled + take].copy_from_slice(&chunk[..take]);
            self.advance(take);
            filled += take;
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// A segmented, cheaply cloneable byte sequence: an ordered chain of
/// [`Bytes`] segments read as one logical buffer.
///
/// This is the shim's packing primitive: appending a segment shares its
/// allocation instead of copying ([`Rope::push`]/[`Rope::append`]), and
/// [`Rope::split_to`] carves a prefix off along segment boundaries — at
/// most one segment is split, and even that split is a window adjustment,
/// never a memcpy. The single-segment case stays allocation-free beyond
/// the segment itself (`head` is inline; `rest` is an empty `VecDeque`,
/// which does not allocate until a second segment arrives).
///
/// Invariant: no stored segment is empty, so `chunk()` is non-empty
/// whenever `remaining() > 0`.
#[derive(Clone, Default)]
pub struct Rope {
    head: Bytes,
    rest: VecDeque<Bytes>,
    len: usize,
}

impl Rope {
    /// Creates an empty rope.
    pub fn new() -> Self {
        Rope::default()
    }

    /// Total length in bytes across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored segments.
    pub fn n_segments(&self) -> usize {
        usize::from(!self.head.is_empty()) + self.rest.len()
    }

    /// `true` if the bytes live in at most one segment (so
    /// [`Rope::to_bytes`] is zero-copy).
    pub fn is_contiguous(&self) -> bool {
        self.rest.is_empty()
    }

    /// Appends a segment, sharing its allocation. Empty segments are
    /// dropped (they would break the non-empty-chunk invariant).
    pub fn push(&mut self, seg: Bytes) {
        if seg.is_empty() {
            return;
        }
        self.len += seg.len();
        if self.head.is_empty() && self.rest.is_empty() {
            self.head = seg;
        } else {
            self.rest.push_back(seg);
        }
    }

    /// Appends every segment of `other`, sharing their allocations.
    pub fn append(&mut self, other: Rope) {
        self.push(other.head);
        for seg in other.rest {
            self.push(seg);
        }
    }

    /// Splits the first `at` bytes off into a new rope, leaving `self`
    /// with the remainder. Whole segments move; at most one segment is
    /// split, and that split shares the allocation (zero-copy).
    ///
    /// Panics if `at > len()`.
    pub fn split_to(&mut self, at: usize) -> Rope {
        assert!(at <= self.len, "split_to out of bounds");
        let mut out = Rope::new();
        let mut need = at;
        while need > 0 {
            if self.head.is_empty() {
                self.head = self.rest.pop_front().expect("len invariant");
            }
            let take = self.head.len().min(need);
            let seg = self.head.split_to(take);
            self.len -= take;
            need -= take;
            out.push(seg);
        }
        // Restore the non-empty-head invariant for self.
        if self.head.is_empty() {
            if let Some(next) = self.rest.pop_front() {
                self.head = next;
            }
        }
        out
    }

    /// Returns the content as a single [`Bytes`]: zero-copy when
    /// contiguous (shares the one segment), flattening copy otherwise.
    pub fn to_bytes(&self) -> Bytes {
        if self.is_contiguous() {
            return self.head.clone();
        }
        let mut flat = Vec::with_capacity(self.len);
        flat.extend_from_slice(&self.head);
        for seg in &self.rest {
            flat.extend_from_slice(seg);
        }
        Bytes::from(flat)
    }

    /// Copies the content into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut flat = Vec::with_capacity(self.len);
        flat.extend_from_slice(&self.head);
        for seg in &self.rest {
            flat.extend_from_slice(seg);
        }
        flat
    }

    /// Iterates the segments in order.
    pub fn segments(&self) -> impl Iterator<Item = &Bytes> {
        std::iter::once(&self.head)
            .filter(|s| !s.is_empty())
            .chain(self.rest.iter())
    }
}

impl From<Bytes> for Rope {
    fn from(b: Bytes) -> Self {
        let mut r = Rope::new();
        r.push(b);
        r
    }
}

impl Buf for Rope {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        &self.head
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance past end");
        let _ = self.split_to(cnt);
    }
}

impl PartialEq for Rope {
    fn eq(&self, other: &Self) -> bool {
        // Content equality, segmentation-agnostic: walk both chains.
        if self.len != other.len {
            return false;
        }
        let (mut a, mut b) = (self.clone(), other.clone());
        while a.remaining() > 0 {
            let n = a.chunk().len().min(b.chunk().len());
            if a.chunk()[..n] != b.chunk()[..n] {
                return false;
            }
            a.advance(n);
            b.advance(n);
        }
        true
    }
}
impl Eq for Rope {}

impl PartialEq<[u8]> for Rope {
    fn eq(&self, other: &[u8]) -> bool {
        if self.len != other.len() {
            return false;
        }
        let mut off = 0;
        for seg in self.segments() {
            if **seg != other[off..off + seg.len()] {
                return false;
            }
            off += seg.len();
        }
        true
    }
}

impl PartialEq<Vec<u8>> for Rope {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self == other[..]
    }
}

impl fmt::Debug for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rope[{} seg, {} B]b\"", self.n_segments(), self.len)?;
        for seg in self.segments() {
            for &b in seg.as_slice() {
                write!(f, "{}", std::ascii::escape_default(b))?;
            }
        }
        write!(f, "\"")
    }
}

/// Write cursor over a growable byte sink. Fixed-width writers are
/// big-endian, matching the real crate's `put_*` defaults.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        let mut raw = b.freeze();
        assert_eq!(raw.len(), 13);
        assert_eq!(raw.get_u8(), 7);
        assert_eq!(raw.get_u32(), 0xDEAD_BEEF);
        assert_eq!(raw.get_u64(), 0x0123_4567_89AB_CDEF);
        assert!(raw.is_empty());
    }

    #[test]
    fn clones_share_and_slices_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let mut c = s.clone();
        c.advance(1);
        assert_eq!(c.as_ref(), &[3, 4]);
        assert_eq!(
            s.as_ref(),
            &[2, 3, 4],
            "clone advance must not affect source"
        );
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::from(vec![1, 2]));
        assert_ne!(Bytes::from(vec![1, 2]), Bytes::from(vec![1, 3]));
        assert_eq!(Bytes::from_static(b"ab"), Bytes::from(b"ab".to_vec()));
    }

    #[test]
    fn split_to_shares_the_allocation() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[0, 1]);
        assert_eq!(b.as_ref(), &[2, 3, 4]);
        assert!(Arc::ptr_eq(&head.data, &b.data), "no copy on split");
        let empty = b.split_to(0);
        assert!(empty.is_empty());
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.split_to(3);
    }

    #[test]
    fn rope_chains_segments_without_copying() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![4, 5]);
        let mut r = Rope::new();
        assert!(r.is_empty());
        r.push(a.clone());
        assert!(r.is_contiguous());
        r.push(Bytes::new()); // empties are dropped
        r.push(b.clone());
        assert_eq!(r.len(), 5);
        assert_eq!(r.n_segments(), 2);
        assert!(!r.is_contiguous());
        // Segments share the original allocations.
        let segs: Vec<&Bytes> = r.segments().collect();
        assert!(Arc::ptr_eq(&segs[0].data, &a.data));
        assert!(Arc::ptr_eq(&segs[1].data, &b.data));
        assert_eq!(r, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn rope_split_to_respects_segment_boundaries() {
        let mut r = Rope::new();
        r.push(Bytes::from(vec![1, 2, 3]));
        r.push(Bytes::from(vec![4, 5]));
        r.push(Bytes::from(vec![6, 7, 8, 9]));

        // Split inside the second segment: first moves whole, second is
        // window-split; nothing is copied.
        let head = r.split_to(4);
        assert_eq!(head, vec![1, 2, 3, 4]);
        assert_eq!(head.n_segments(), 2);
        assert_eq!(r, vec![5, 6, 7, 8, 9]);
        assert_eq!(r.len(), 5);

        // Exactly-on-boundary split.
        let rest = r.split_to(1);
        assert_eq!(rest, vec![5]);
        assert_eq!(r, vec![6, 7, 8, 9]);
        assert!(r.is_contiguous(), "only one segment remains");
    }

    #[test]
    fn rope_buf_reads_cross_segments() {
        // A u32 split across three segments must still read correctly:
        // copy_fixed has to loop over chunks.
        let mut r = Rope::new();
        r.push(Bytes::from(vec![0xDE]));
        r.push(Bytes::from(vec![0xAD, 0xBE]));
        r.push(Bytes::from(vec![0xEF, 0x07]));
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 0x07);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn rope_to_bytes_is_zero_copy_when_contiguous() {
        let seg = Bytes::from(vec![9, 8, 7]);
        let r = Rope::from(seg.clone());
        let back = r.to_bytes();
        assert!(Arc::ptr_eq(&back.data, &seg.data), "contiguous: shared");

        let mut two = r.clone();
        two.push(Bytes::from(vec![6]));
        assert_eq!(two.to_bytes().as_ref(), &[9, 8, 7, 6]);
        assert_eq!(two.to_vec(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn rope_append_and_equality_are_segmentation_agnostic() {
        let mut a = Rope::from(Bytes::from(vec![1, 2, 3, 4]));
        let mut b = Rope::from(Bytes::from(vec![1, 2]));
        b.append(Rope::from(Bytes::from(vec![3, 4])));
        assert_eq!(a, b, "same content, different segmentation");
        a.advance(1);
        assert_ne!(a, b);
        assert_eq!(a, vec![2, 3, 4]);
    }
}
