//! Offline API-compatible shim for `parking_lot` 0.12.
//!
//! Provides the subset the workspace uses — [`Mutex`] (non-poisoning
//! `lock()` returning a guard directly) and [`Condvar`] (whose `wait` takes
//! `&mut MutexGuard`) — implemented over `std::sync`. Poison errors are
//! swallowed exactly like parking_lot does (a panicking critical section
//! does not poison the lock). Swap for `parking_lot = "0.12"` when a
//! registry is reachable.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock()` returns
/// the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable whose `wait` operates on a [`MutexGuard`] in place.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified; the
    /// mutex is re-acquired (in place) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_with(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Moves the value out of `slot`, maps it, and writes the result back.
///
/// SAFETY contract: `f` must not panic, or `slot` is left logically
/// uninitialized and the process must abort. `std::sync::Condvar::wait`
/// only returns (it does not unwind), and a poisoned result is unwrapped
/// into its inner guard, so `f` cannot panic here; the abort guard below
/// enforces the contract defensively.
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnDrop;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
