//! Concurrent queues: a lock-free `SegQueue`.

use crate::epoch::Collector;
use crate::order::{AlwaysSeqCst, OrderPolicy, Tuned};
use crate::utils::CachePadded;
use core::marker::PhantomData;
use core::mem::MaybeUninit;
use core::ptr;
use core::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use core::sync::atomic::{AtomicPtr, AtomicUsize};

/// An unbounded multi-producer multi-consumer FIFO queue.
///
/// API-compatible with `crossbeam::queue::SegQueue`. The implementation is
/// the Michael–Scott lock-free linked queue (PODC '96): `head` points at a
/// *dummy* node whose `next` is the front element; `push` links at `tail`
/// with a compare-and-swap (helping a lagging tail forward), and `pop`
/// swings `head` to the next node, whose value the CAS winner moves out —
/// the popped node becomes the new dummy. Unlinked dummies are freed
/// through the crate's epoch-based reclamation (`epoch` module), which is
/// what makes the pointers ABA-safe: a node's address cannot be recycled
/// while any thread that could still CAS against it remains pinned.
///
/// # Memory orderings and layout
///
/// Each atomic site issues the weakest ordering its publish/consume edge
/// needs (justifications inline and in `docs/SCHEDULER.md`'s ordering
/// table), routed through the [`OrderPolicy`] type parameter: the default
/// [`Tuned`] is the audited acquire/release version, while
/// [`SeqCstSegQueue`] upgrades every site back to `SeqCst` — the pre-PR-5
/// behaviour, kept as the `relaxed_vs_seqcst_contended` ablation baseline.
///
/// `head` is owned by poppers and `tail` by pushers; each sits on its own
/// cache line ([`CachePadded`]) so a push never steals the line a
/// concurrent pop is spinning on, and `len` — touched by both sides —
/// gets a third line instead of false-sharing with either.
pub struct SegQueue<T, P: OrderPolicy = Tuned> {
    /// The dummy node; `head.next` is the front element (null = empty).
    head: CachePadded<AtomicPtr<Node<T>>>,
    tail: CachePadded<AtomicPtr<Node<T>>>,
    /// Element count, maintained `push`-side *before* linking so the
    /// matching decrement can never underflow. Racy snapshot by nature.
    len: CachePadded<AtomicUsize>,
    collector: Collector<P>,
    _policy: PhantomData<P>,
}

/// The all-`SeqCst` ablation baseline: same algorithm, same layout, every
/// ordering upgraded (see [`crate::order`]). Benchmarked head-to-head
/// against the tuned [`SegQueue`] by `relaxed_vs_seqcst_contended`.
pub type SeqCstSegQueue<T> = SegQueue<T, AlwaysSeqCst>;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `MaybeUninit` so freeing a node never double-drops: the dummy holds
    /// no value, and a popped node's value is moved out before the node is
    /// retired.
    value: MaybeUninit<T>,
}

// The auto impls would be unbounded (the struct stores only raw pointers
// and atomics); tie them to `T: Send` like the real crate does.
unsafe impl<T: Send, P: OrderPolicy> Send for SegQueue<T, P> {}
unsafe impl<T: Send, P: OrderPolicy> Sync for SegQueue<T, P> {}

impl<T, P: OrderPolicy> SegQueue<T, P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: MaybeUninit::uninit(),
        }));
        SegQueue {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            len: CachePadded::new(AtomicUsize::new(0)),
            collector: Collector::new(),
            _policy: PhantomData,
        }
    }

    /// Pushes `value` at the back of the queue. Never blocks.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: MaybeUninit::new(value),
        }));
        // Count before linking (see the `len` field docs); Relaxed — the
        // counter is a hint, no data is published through it.
        self.len.fetch_add(1, P::ord(Relaxed));
        let _guard = self.collector.pin();
        loop {
            // Acquire: the loaded node is dereferenced (its `next` read
            // below); pairs with the Release CAS that published it.
            let tail = self.tail.load(P::ord(Acquire));
            let next = unsafe { (*tail).next.load(P::ord(Acquire)) };
            if !next.is_null() {
                // Tail lags behind the last node; help it forward, retry.
                // Release on success keeps the tail-publication chain (the
                // next loader dereferences what we publish); failure means
                // someone else helped, Relaxed.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, P::ord(Release), P::ord(Relaxed));
                continue;
            }
            // The linking CAS is the *publication* of `node` (its value
            // and null `next`): Release so any Acquire load of this `next`
            // edge sees the node fully initialized. Failure: another push
            // linked first; we retry from a fresh tail read, Relaxed.
            if unsafe {
                (*tail).next.compare_exchange(
                    ptr::null_mut(),
                    node,
                    P::ord(Release),
                    P::ord(Relaxed),
                )
            }
            .is_ok()
            {
                // Linking succeeded; swinging tail is best-effort (a loser
                // helps on its next attempt). Release for the same
                // dereference-after-load reason as the helping CAS.
                let _ = self
                    .tail
                    .compare_exchange(tail, node, P::ord(Release), P::ord(Relaxed));
                return;
            }
        }
    }

    /// Pops the front element, or `None` if the queue is empty. Never
    /// blocks.
    pub fn pop(&self) -> Option<T> {
        let _guard = self.collector.pin();
        loop {
            // Acquire: `head` is dereferenced right below; pairs with the
            // Release head-swing CAS of the pop that published it.
            let head = self.head.load(P::ord(Acquire));
            // Acquire: pairs with the pusher's Release linking CAS — after
            // this load, `(*next).value` is fully initialized and safe for
            // the CAS winner to move out.
            let next = unsafe { (*head).next.load(P::ord(Acquire)) };
            if next.is_null() {
                return None;
            }
            // Relaxed: only the *address* is compared against `head`; the
            // pointer is not dereferenced on this path. The comparison is
            // still guaranteed fresh enough for the help-before-unlink
            // invariant: the pop that published the `head` we Acquire-
            // loaded above had itself observed `tail` strictly past that
            // node before its Release CAS, so read-read coherence (our
            // load happens-after its observation) forbids this load from
            // returning a value *behind* `head` — we can read `head`
            // itself (then we help) or something newer, never a stale
            // predecessor that would let us skip the help and strand
            // `tail` on the node we retire.
            let tail = self.tail.load(P::ord(Relaxed));
            if head == tail {
                // Non-empty but tail still points at the dummy: help it
                // forward *before* unlinking, so `tail` can never be left
                // pointing at a retired node. Release continues the
                // publication chain for subsequent tail dereferences.
                let _ = self
                    .tail
                    .compare_exchange(tail, next, P::ord(Release), P::ord(Relaxed));
                continue;
            }
            // Release on the winning head swing: readers that Acquire-load
            // the new head inherit the full chain back to the push that
            // initialized it. The value read below is already ordered by
            // the Acquire load of `next` above; failure retries, Relaxed.
            if self
                .head
                .compare_exchange(head, next, P::ord(Release), P::ord(Relaxed))
                .is_ok()
            {
                // `next` is the new dummy; the CAS winner alone moves its
                // value out (other threads only ever compare its address).
                let value = unsafe { ptr::read((*next).value.as_ptr()) };
                self.len.fetch_sub(1, P::ord(Relaxed));
                // The old dummy is unreachable from the live queue; free it
                // once every currently-pinned thread is gone.
                self.collector.retire(head);
                return Some(value);
            }
        }
    }

    /// Applies `f` to a shared reference to the front element without
    /// popping it, or returns `None` if the queue looks empty. Never blocks.
    ///
    /// This is the read-only head peek backing the scheduler's
    /// deadline-tournament pop (`pioman::lockfree::ClassLanes`): lane heads
    /// are compared by deadline and only the winner's lane is popped.
    ///
    /// Inherently racy by contract, like `len`: the element may be popped
    /// (or a first element pushed) concurrently, so the observation is a
    /// *hint*, not a linearized snapshot. Callers must tolerate the real
    /// pop disagreeing with the peek.
    ///
    /// # Soundness
    ///
    /// The shared reference handed to `f` is sound despite concurrent
    /// pushes and pops:
    /// - The node's `value` bytes are written exactly once, *before* the
    ///   pusher's Release linking CAS published the node; our Acquire load
    ///   of the `next` edge pairs with that CAS, so the bytes are fully
    ///   initialized and no write to them can race with our read.
    /// - Poppers never write the value either — the head-swing CAS winner
    ///   `ptr::read`s the bytes (a read!) and retires the *previous* dummy,
    ///   so the peeked node's value is immutable for the node's lifetime.
    /// - The epoch pin held for the duration of `f` keeps the node's
    ///   allocation alive even if it is popped and retired concurrently
    ///   (retirement frees only after every currently-pinned thread
    ///   unpins), so the reference cannot dangle.
    pub fn peek_map<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let _guard = self.collector.pin();
        // Acquire: `head` is dereferenced below; pairs with the Release
        // head-swing CAS of the pop that published it.
        let head = self.head.load(P::ord(Acquire));
        // Acquire: pairs with the pusher's Release linking CAS — after this
        // load the node's value is fully initialized (see pop).
        let next = unsafe { (*head).next.load(P::ord(Acquire)) };
        if next.is_null() {
            return None;
        }
        // SAFETY: initialized by the publication edge above, never written
        // again (poppers only ptr::read), and kept allocated by our pin.
        let value = unsafe { &*(*next).value.as_ptr() };
        Some(f(value))
    }

    /// Number of elements currently queued (racy snapshot; may transiently
    /// count an element whose `push` has not finished linking).
    pub fn len(&self) -> usize {
        // Relaxed: a hint by contract; the scheduler's wake paths carry
        // their own synchronization (unpark tokens), never this counter.
        self.len.load(P::ord(Relaxed))
    }

    /// `true` if the queue holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, P: OrderPolicy> Default for SegQueue<T, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, P: OrderPolicy> core::fmt::Debug for SegQueue<T, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SegQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T, P: OrderPolicy> Drop for SegQueue<T, P> {
    fn drop(&mut self) {
        // Exclusive access: walk the live list, dropping the values of the
        // non-dummy nodes, then the nodes themselves. Retired dummies (and
        // their allocations) are freed by the collector's drop.
        let mut cur = *self.head.get_mut();
        let mut is_dummy = true;
        while !cur.is_null() {
            let mut node = unsafe { Box::from_raw(cur) };
            cur = *node.next.get_mut();
            if !is_dummy {
                unsafe { node.value.assume_init_drop() };
            }
            is_dummy = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::<i32>::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_seqcst_baseline() {
        // The ablation alias runs the identical algorithm.
        let q = SeqCstSegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_push_pop() {
        let q = Arc::new(SegQueue::<usize>::new());
        let per_thread = if cfg!(miri) { 20 } else { 100 };
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        q.push(t * per_thread + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got.len(), 4 * per_thread);
        assert!(got.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn mpmc_interleaved_no_loss_no_duplication() {
        let q = Arc::new(SegQueue::<u64>::new());
        let producers = if cfg!(miri) { 2u64 } else { 4 };
        let per_producer = if cfg!(miri) { 25u64 } else { 5_000 };
        let consumers = if cfg!(miri) { 2 } else { 4 };
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i);
                }
            }));
        }
        let mut chandles = Vec::new();
        for _ in 0..consumers {
            let q = q.clone();
            let done = done.clone();
            chandles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => local.push(v),
                        None if done.load(SeqCst) == 1 && q.is_empty() => break,
                        None => std::thread::yield_now(),
                    }
                }
                local
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        done.store(1, SeqCst);
        let mut all: Vec<u64> = Vec::new();
        for c in chandles {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let total = (producers * per_producer) as usize;
        assert_eq!(all.len(), total, "every element consumed exactly once");
        all.dedup();
        assert_eq!(all.len(), total, "no element duplicated");
    }

    #[test]
    fn values_in_flight_are_dropped_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(#[allow(dead_code)] u32);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let q = SegQueue::<Tracked>::new();
        for i in 0..100u32 {
            q.push(Tracked(i));
        }
        for _ in 0..40 {
            drop(q.pop());
        }
        assert_eq!(DROPS.load(SeqCst), 40);
        // The 60 still enqueued are dropped by the queue's own drop.
        drop(q);
        assert_eq!(DROPS.load(SeqCst), 100);
    }

    #[test]
    fn reclamation_keeps_up_under_churn() {
        // Enough pop-retire cycles to force many epoch advances; the real
        // assertion is the absence of UB (run under Miri in CI, including
        // the weak-memory many-seeds pass) and that the queue stays
        // consistent throughout.
        let q = SegQueue::<usize>::new();
        let rounds = if cfg!(miri) { 3 } else { 200 };
        for round in 0..rounds {
            for i in 0..100usize {
                q.push(round * 100 + i);
            }
            for i in 0..100usize {
                assert_eq!(q.pop(), Some(round * 100 + i));
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn tuned_and_seqcst_agree_under_concurrency() {
        // Run the same MPMC workload over both policies; the observable
        // behaviour (no loss, no duplication) must be identical.
        fn hammer<P: OrderPolicy>() {
            let q = Arc::new(SegQueue::<u64, P>::new());
            let threads = if cfg!(miri) { 2 } else { 4 };
            let per = if cfg!(miri) { 15u64 } else { 2_000 };
            let popped = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for t in 0..threads {
                let q = q.clone();
                let popped = popped.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..per {
                        q.push(t * per + i);
                        if q.pop().is_some() {
                            popped.fetch_add(1, SeqCst);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut rest = 0;
            while q.pop().is_some() {
                rest += 1;
            }
            assert_eq!(
                popped.load(SeqCst) + rest,
                (threads * per) as usize,
                "every pushed element popped exactly once"
            );
        }
        hammer::<Tuned>();
        hammer::<AlwaysSeqCst>();
    }

    #[test]
    fn peek_map_observes_the_front_without_popping() {
        let q = SegQueue::<i32>::new();
        assert_eq!(q.peek_map(|v| *v), None, "empty queue peeks nothing");
        q.push(10);
        q.push(20);
        assert_eq!(q.peek_map(|v| *v), Some(10));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some(10), "peek saw the element pop returns");
        assert_eq!(q.peek_map(|v| *v), Some(20));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.peek_map(|v| *v), None);
    }

    #[test]
    fn peek_map_is_sound_against_racing_pops_and_pushes() {
        // The reclamation/aliasing claim in `peek_map`'s soundness comment,
        // exercised under Miri in CI (weak memory + many seeds): peekers
        // read head values while other threads pop (retiring the nodes) and
        // push. Every peeked value must be one that was actually pushed and
        // not yet past — i.e. a valid, initialized element.
        let q = Arc::new(SegQueue::<u64>::new());
        let per = if cfg!(miri) { 15u64 } else { 2_000 };
        let peeker = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..per {
                    if let Some(v) = q.peek_map(|v| *v) {
                        assert!(v < per, "peeked a value never pushed");
                        seen += 1;
                    }
                    std::hint::spin_loop();
                }
                seen
            })
        };
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                while got < per {
                    if q.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for i in 0..per {
            q.push(i);
        }
        popper.join().unwrap();
        peeker.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn head_tail_and_len_live_on_distinct_cache_lines() {
        let q = SegQueue::<u8>::new();
        let head = &*q.head as *const _ as usize;
        let tail = &*q.tail as *const _ as usize;
        let len = &*q.len as *const _ as usize;
        for (a, b) in [(head, tail), (tail, len), (head, len)] {
            assert!(
                a.abs_diff(b) >= 128,
                "owner/thief hot words must not share a line pair"
            );
        }
    }
}
