//! Concurrent queues: a lock-free `SegQueue`.

use crate::epoch::Collector;
use core::mem::MaybeUninit;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};

/// An unbounded multi-producer multi-consumer FIFO queue.
///
/// API-compatible with `crossbeam::queue::SegQueue`. The implementation is
/// the Michael–Scott lock-free linked queue (PODC '96): `head` points at a
/// *dummy* node whose `next` is the front element; `push` links at `tail`
/// with a compare-and-swap (helping a lagging tail forward), and `pop`
/// swings `head` to the next node, whose value the CAS winner moves out —
/// the popped node becomes the new dummy. Unlinked dummies are freed
/// through the crate's epoch-based reclamation (`epoch` module), which is
/// what makes the pointers ABA-safe: a node's address cannot be recycled
/// while any thread that could still CAS against it remains pinned.
pub struct SegQueue<T> {
    /// The dummy node; `head.next` is the front element (null = empty).
    head: AtomicPtr<Node<T>>,
    tail: AtomicPtr<Node<T>>,
    /// Element count, maintained `push`-side *before* linking so the
    /// matching decrement can never underflow. Racy snapshot by nature.
    len: AtomicUsize,
    collector: Collector,
}

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `MaybeUninit` so freeing a node never double-drops: the dummy holds
    /// no value, and a popped node's value is moved out before the node is
    /// retired.
    value: MaybeUninit<T>,
}

// The auto impls would be unbounded (the struct stores only raw pointers
// and atomics); tie them to `T: Send` like the real crate does.
unsafe impl<T: Send> Send for SegQueue<T> {}
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: MaybeUninit::uninit(),
        }));
        SegQueue {
            head: AtomicPtr::new(dummy),
            tail: AtomicPtr::new(dummy),
            len: AtomicUsize::new(0),
            collector: Collector::new(),
        }
    }

    /// Pushes `value` at the back of the queue. Never blocks.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: MaybeUninit::new(value),
        }));
        // Count before linking: see the `len` field docs.
        self.len.fetch_add(1, SeqCst);
        let _guard = self.collector.pin();
        loop {
            let tail = self.tail.load(SeqCst);
            let next = unsafe { (*tail).next.load(SeqCst) };
            if !next.is_null() {
                // Tail lags behind the last node; help it forward, retry.
                let _ = self.tail.compare_exchange(tail, next, SeqCst, SeqCst);
                continue;
            }
            if unsafe {
                (*tail)
                    .next
                    .compare_exchange(ptr::null_mut(), node, SeqCst, SeqCst)
            }
            .is_ok()
            {
                // Linking succeeded; swinging tail is best-effort (a loser
                // helps on its next attempt).
                let _ = self.tail.compare_exchange(tail, node, SeqCst, SeqCst);
                return;
            }
        }
    }

    /// Pops the front element, or `None` if the queue is empty. Never
    /// blocks.
    pub fn pop(&self) -> Option<T> {
        let _guard = self.collector.pin();
        loop {
            let head = self.head.load(SeqCst);
            let next = unsafe { (*head).next.load(SeqCst) };
            if next.is_null() {
                return None;
            }
            let tail = self.tail.load(SeqCst);
            if head == tail {
                // Non-empty but tail still points at the dummy: help it
                // forward *before* unlinking, so `tail` can never be left
                // pointing at a retired node.
                let _ = self.tail.compare_exchange(tail, next, SeqCst, SeqCst);
                continue;
            }
            if self
                .head
                .compare_exchange(head, next, SeqCst, SeqCst)
                .is_ok()
            {
                // `next` is the new dummy; the CAS winner alone moves its
                // value out (other threads only ever compare its address).
                let value = unsafe { ptr::read((*next).value.as_ptr()) };
                self.len.fetch_sub(1, SeqCst);
                // The old dummy is unreachable from the live queue; free it
                // once every currently-pinned thread is gone.
                self.collector.retire(head);
                return Some(value);
            }
        }
    }

    /// Number of elements currently queued (racy snapshot; may transiently
    /// count an element whose `push` has not finished linking).
    pub fn len(&self) -> usize {
        self.len.load(SeqCst)
    }

    /// `true` if the queue holds no elements (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> core::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SegQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Drop for SegQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the live list, dropping the values of the
        // non-dummy nodes, then the nodes themselves. Retired dummies (and
        // their allocations) are freed by the collector's drop.
        let mut cur = *self.head.get_mut();
        let mut is_dummy = true;
        while !cur.is_null() {
            let mut node = unsafe { Box::from_raw(cur) };
            cur = *node.next.get_mut();
            if !is_dummy {
                unsafe { node.value.assume_init_drop() };
            }
            is_dummy = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_push_pop() {
        let q = Arc::new(SegQueue::new());
        let per_thread = if cfg!(miri) { 20 } else { 100 };
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        q.push(t * per_thread + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got.len(), 4 * per_thread);
        assert!(got.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn mpmc_interleaved_no_loss_no_duplication() {
        let q = Arc::new(SegQueue::new());
        let producers = if cfg!(miri) { 2u64 } else { 4 };
        let per_producer = if cfg!(miri) { 25u64 } else { 5_000 };
        let consumers = if cfg!(miri) { 2 } else { 4 };
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i);
                }
            }));
        }
        let mut chandles = Vec::new();
        for _ in 0..consumers {
            let q = q.clone();
            let done = done.clone();
            chandles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => local.push(v),
                        None if done.load(SeqCst) == 1 && q.is_empty() => break,
                        None => std::thread::yield_now(),
                    }
                }
                local
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        done.store(1, SeqCst);
        let mut all: Vec<u64> = Vec::new();
        for c in chandles {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let total = (producers * per_producer) as usize;
        assert_eq!(all.len(), total, "every element consumed exactly once");
        all.dedup();
        assert_eq!(all.len(), total, "no element duplicated");
    }

    #[test]
    fn values_in_flight_are_dropped_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(#[allow(dead_code)] u32);
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let q = SegQueue::new();
        for i in 0..100u32 {
            q.push(Tracked(i));
        }
        for _ in 0..40 {
            drop(q.pop());
        }
        assert_eq!(DROPS.load(SeqCst), 40);
        // The 60 still enqueued are dropped by the queue's own drop.
        drop(q);
        assert_eq!(DROPS.load(SeqCst), 100);
    }

    #[test]
    fn reclamation_keeps_up_under_churn() {
        // Enough pop-retire cycles to force many epoch advances; the real
        // assertion is the absence of UB (run under Miri in CI) and that
        // the queue stays consistent throughout.
        let q = SegQueue::new();
        let rounds = if cfg!(miri) { 3 } else { 200 };
        for round in 0..rounds {
            for i in 0..100usize {
                q.push(round * 100 + i);
            }
            for i in 0..100usize {
                assert_eq!(q.pop(), Some(round * 100 + i));
            }
            assert!(q.is_empty());
        }
    }
}
