//! Utilities mirroring `crossbeam-utils`: cache-line padding.

use core::ops::{Deref, DerefMut};

/// Pads and aligns `T` to (twice) the cache-line size so two neighbouring
/// `CachePadded` values can never share a line.
///
/// Why it exists: an atomic that one core writes and another reads costs a
/// coherence round-trip *per line*, not per word. Two logically unrelated
/// atomics that happen to sit in the same 64-byte line therefore serialize
/// each other's cores — *false sharing*. The scheduler's hot counters
/// (per-core execution counts, queue length hints, the lock-free queue's
/// `head`/`tail`) are exactly that shape: different cores hammer different
/// words at high rate. Padding each to its own line turns the cross-core
/// traffic into private-line hits.
///
/// The alignment is 128 bytes, like the real `crossbeam-utils` on x86-64:
/// Intel's spatial prefetcher pulls cache lines in pairs, so 64-byte
/// alignment still lets the prefetcher couple two neighbours.
///
/// # Examples
///
/// ```
/// use crossbeam::utils::CachePadded;
/// use core::sync::atomic::AtomicU64;
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// assert!(core::mem::size_of_val(&slots[0]) >= 128);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` out to its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_isolates_neighbours() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*pair[0] as *const u8 as usize;
        let b = &*pair[1] as *const u8 as usize;
        assert!(b - a >= 128, "neighbours must sit on different line pairs");
        assert_eq!(a % 128, 0, "alignment must be 128");
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(vec![1, 2]);
        p.push(3);
        assert_eq!(&*p, &[1, 2, 3]);
        assert_eq!(p.into_inner(), vec![1, 2, 3]);
    }
}
