//! Offline API-compatible stand-in for the `crossbeam` umbrella crate.
//!
//! This workspace builds in an environment without registry access, so the
//! subset of crossbeam it uses is vendored here: [`queue::SegQueue`], an
//! unbounded MPMC FIFO. Earlier revisions shimmed it over a mutexed
//! `VecDeque`; it is now a **real lock-free queue** — the Michael–Scott
//! linked queue with a three-epoch reclamation scheme (see the `epoch`
//! module) — so the `queue_backend` ablation benches compare genuine
//! lock-free behaviour against the paper's spinlock design. Swap for
//! `crossbeam = "0.8"` when a registry is reachable.

#![warn(missing_docs)]

mod epoch;
pub mod queue;
