//! Offline API-compatible stand-in for the `crossbeam` umbrella crate.
//!
//! This workspace builds in an environment without registry access, so the
//! subset of crossbeam it uses is vendored here: [`queue::SegQueue`], an
//! unbounded MPMC FIFO (a real Michael–Scott lock-free queue with a
//! three-epoch reclamation scheme — see the `epoch` module), and
//! [`utils::CachePadded`], the false-sharing guard from `crossbeam-utils`.
//!
//! Since PR 5 every atomic site issues the **weakest sound memory
//! ordering** (audited per site; table in `docs/SCHEDULER.md`), with the
//! old all-`SeqCst` behaviour preserved as a compile-time
//! [`order::OrderPolicy`] ([`queue::SeqCstSegQueue`]) so the
//! `relaxed_vs_seqcst_contended` bench can measure what the fences cost.
//! Swap for `crossbeam = "0.8"` when a registry is reachable.

#![warn(missing_docs)]

mod epoch;
pub mod order;
pub mod queue;
pub mod utils;
