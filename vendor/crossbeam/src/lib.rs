//! Offline API-compatible shim for the `crossbeam` umbrella crate.
//!
//! This workspace builds in an environment without registry access, so the
//! subset of crossbeam it uses is vendored here: [`queue::SegQueue`], an
//! unbounded MPMC FIFO. The real crate's implementation is a lock-free
//! segmented Michael-Scott queue; this shim provides the same interface and
//! semantics (thread-safe, FIFO, unbounded) over a mutexed `VecDeque`.
//! Swap for `crossbeam = "0.8"` when a registry is reachable.

#![warn(missing_docs)]

pub mod queue {
    //! Concurrent queues (shim: `SegQueue` only).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    ///
    /// API-compatible with `crossbeam::queue::SegQueue`.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` at the back of the queue.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Pops the front element, or `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// `true` if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn concurrent_push_pop() {
            use std::sync::Arc;
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = q.clone();
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            q.push(t * 100 + i);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut got = Vec::new();
            while let Some(v) = q.pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got.len(), 400);
            assert!(got.windows(2).all(|w| w[0] != w[1]));
        }
    }
}
