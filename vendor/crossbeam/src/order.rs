//! The memory-ordering policy behind the relaxed-vs-SeqCst ablation.
//!
//! Until PR 5 every atomic in this crate used `SeqCst` — auditable, but the
//! hot path paid full fences it did not need. The queue and epoch modules
//! are now written against the **weakest sound ordering per site** (the
//! per-site justifications live in `docs/SCHEDULER.md`'s ordering table),
//! and this module is how the old behaviour survives as a measurable
//! baseline instead of a git-archaeology exercise: every ordering in the
//! generic code is spelled `P::ord(weakest)`, where the default policy
//! ([`Tuned`]) is the identity and the baseline policy ([`AlwaysSeqCst`])
//! upgrades every site back to `SeqCst`.
//!
//! The policy is a zero-sized type resolved at compile time, so the tuned
//! queue pays no branch for the baseline's existence, and the two variants
//! are guaranteed to run *the same algorithm* — the ablation bench
//! (`relaxed_vs_seqcst_contended`) measures exactly the fences.

use core::sync::atomic::Ordering;

/// Compile-time choice of how a site's *weakest sound* ordering is mapped
/// to the ordering actually issued.
pub trait OrderPolicy: Send + Sync + 'static {
    /// Maps the weakest sound ordering for a site to the one to use.
    fn ord(weakest: Ordering) -> Ordering;
}

/// The default policy: issue exactly the weakest sound ordering (the one
/// each call site was audited down to).
#[derive(Debug, Default, Clone, Copy)]
pub struct Tuned;

impl OrderPolicy for Tuned {
    #[inline(always)]
    fn ord(weakest: Ordering) -> Ordering {
        weakest
    }
}

/// The ablation baseline: upgrade every site to `SeqCst`, reproducing the
/// pre-PR-5 all-fences behaviour bit-for-bit (same algorithm, strongest
/// orderings). Kept so `relaxed_vs_seqcst_contended` can measure what the
/// acquire/release pass actually bought on this host.
#[derive(Debug, Default, Clone, Copy)]
pub struct AlwaysSeqCst;

impl OrderPolicy for AlwaysSeqCst {
    #[inline(always)]
    fn ord(_weakest: Ordering) -> Ordering {
        Ordering::SeqCst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_is_identity_and_baseline_upgrades() {
        for o in [
            Ordering::Relaxed,
            Ordering::Acquire,
            Ordering::Release,
            Ordering::AcqRel,
            Ordering::SeqCst,
        ] {
            assert_eq!(Tuned::ord(o), o);
            assert_eq!(AlwaysSeqCst::ord(o), Ordering::SeqCst);
        }
    }
}
