//! Minimal epoch-based reclamation (EBR) backing [`crate::queue::SegQueue`].
//!
//! Lock-free linked structures cannot free a node the moment it is
//! unlinked: another thread may have loaded a pointer to it just before the
//! unlink and still be dereferencing it. This module provides the classic
//! three-epoch answer, scoped per collector (one per queue):
//!
//! * every operation **pins** the collector before loading any queue
//!   pointer and unpins when done; references never outlive the pin;
//! * unlinked nodes are **retired** into one of three bags, indexed by the
//!   epoch at retire time;
//! * the epoch **advances** only when every pinned slot publishes the
//!   current epoch, and advancing from `e` to `e+1` frees bag
//!   `(e+1) % 3` — garbage unlinked at least two epochs ago, which no
//!   still-pinned thread can reach.
//!
//! # Soundness invariants
//!
//! 1. While any slot publishes epoch `p`, the global epoch is `p` or
//!    `p+1`: the advance from `p+1` requires every occupied slot to
//!    publish `p+1`, and [`Collector::pin`] re-publishes until its slot
//!    matches a current read of the global epoch.
//! 2. A retire performed while pinned therefore reads epoch `p` or `p+1`
//!    and lands in bag `p % 3` or `(p+1) % 3` — never the bag the
//!    in-flight advance is freeing (`(g+1) % 3` with `g` current; the
//!    three values are distinct mod 3).
//! 3. The bag is freed *before* the new epoch is published, so no retire
//!    can target a bag while it is being drained.
//!
//! The push/pop hot path is lock-free (pin + CAS); reclamation
//! bookkeeping uses a try-lock so at most one thread advances at a time,
//! and a thread finding all [`PIN_SLOTS`] slots occupied spins for a free
//! one — acceptable for this workspace, where concurrency is bounded by
//! one progression worker per core. Orderings are uniformly `SeqCst`:
//! this shim favors being auditable (and Miri/loom-friendly) over
//! shaving fence cost.

use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::cell::Cell;
use std::ptr;

/// Concurrent operations each occupy one pin slot; more simultaneous
/// operations than slots spin-wait for one to free up.
const PIN_SLOTS: usize = 32;

/// Try to advance the epoch (and free the oldest bag) every this many
/// retires.
const ADVANCE_EVERY: u64 = 64;

/// One pin slot: `0` when free, `(epoch << 1) | 1` when occupied. Padded
/// to a cache line so pin/unpin traffic on neighbouring slots does not
/// false-share.
#[repr(align(64))]
struct Slot(AtomicUsize);

/// Type-erased deferred free: `drop_fn(ptr)` reconstructs and drops the
/// original `Box` allocation.
struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    next: *mut Retired,
}

/// Treiber stack of retired allocations.
struct Bag(AtomicPtr<Retired>);

impl Bag {
    const fn new() -> Self {
        Bag(AtomicPtr::new(ptr::null_mut()))
    }

    fn push(&self, node: *mut Retired) {
        loop {
            let head = self.0.load(SeqCst);
            unsafe { (*node).next = head };
            if self.0.compare_exchange(head, node, SeqCst, SeqCst).is_ok() {
                return;
            }
        }
    }

    /// Detaches the whole bag and frees every allocation in it.
    fn free_all(&self) {
        let mut cur = self.0.swap(ptr::null_mut(), SeqCst);
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            unsafe { (node.drop_fn)(node.ptr) };
        }
    }
}

/// A per-structure epoch-based garbage collector.
pub(crate) struct Collector {
    epoch: AtomicUsize,
    slots: [Slot; PIN_SLOTS],
    bags: [Bag; 3],
    retires: AtomicU64,
    /// Try-lock making the advance/free section exclusive. The push/pop
    /// hot path never takes it.
    advancing: AtomicBool,
}

impl Collector {
    pub(crate) fn new() -> Self {
        Collector {
            epoch: AtomicUsize::new(0),
            slots: [const { Slot(AtomicUsize::new(0)) }; PIN_SLOTS],
            bags: [const { Bag::new() }; 3],
            retires: AtomicU64::new(0),
            advancing: AtomicBool::new(false),
        }
    }

    /// Pins the calling thread: until the returned guard drops, nothing
    /// retired from now on is freed, so nodes reachable from the live
    /// structure stay allocated.
    pub(crate) fn pin(&self) -> Guard<'_> {
        thread_local! {
            static SLOT_HINT: Cell<usize> = const { Cell::new(0) };
        }
        let hint = SLOT_HINT.with(Cell::get);
        let mut epoch = self.epoch.load(SeqCst);
        let slot = 'claim: loop {
            for i in 0..PIN_SLOTS {
                let slot = (hint + i) % PIN_SLOTS;
                if self.slots[slot]
                    .0
                    .compare_exchange(0, (epoch << 1) | 1, SeqCst, SeqCst)
                    .is_ok()
                {
                    break 'claim slot;
                }
            }
            core::hint::spin_loop();
            epoch = self.epoch.load(SeqCst);
        };
        // Re-publish until the slot matches a current read of the global
        // epoch (soundness invariant 1: a slot never lags more than one
        // advance behind, because its stale value blocks the next one).
        loop {
            let now = self.epoch.load(SeqCst);
            if now == epoch {
                break;
            }
            self.slots[slot].0.store((now << 1) | 1, SeqCst);
            epoch = now;
        }
        SLOT_HINT.with(|h| h.set(slot));
        Guard {
            collector: self,
            slot,
        }
    }

    /// Defers freeing `ptr` (a `Box<T>` allocation) until no pinned thread
    /// can still hold a reference to it. Must be called while pinned.
    pub(crate) fn retire<T>(&self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut ()) {
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        let node = Box::into_raw(Box::new(Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            next: ptr::null_mut(),
        }));
        let epoch = self.epoch.load(SeqCst);
        self.bags[epoch % 3].push(node);
        if self.retires.fetch_add(1, SeqCst) % ADVANCE_EVERY == ADVANCE_EVERY - 1 {
            self.try_advance();
        }
    }

    /// Tries to advance the global epoch by one, freeing the bag that
    /// becomes unreachable. A no-op when another thread is already
    /// advancing or some slot still publishes an older epoch.
    fn try_advance(&self) {
        if self.advancing.swap(true, SeqCst) {
            return;
        }
        let epoch = self.epoch.load(SeqCst);
        let current = (epoch << 1) | 1;
        let all_current = self
            .slots
            .iter()
            .all(|s| matches!(s.0.load(SeqCst), v if v == 0 || v == current));
        if all_current {
            // Soundness invariant 3: free before publishing the new epoch,
            // so concurrent retires (which target `epoch % 3` or, for
            // threads pinned one advance behind, `(epoch + 2) % 3`) can
            // never push into the bag being drained.
            self.bags[(epoch + 1) % 3].free_all();
            self.epoch.store(epoch + 1, SeqCst);
        }
        self.advancing.store(false, SeqCst);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // Exclusive access: every deferred free can run now.
        for bag in &self.bags {
            bag.free_all();
        }
    }
}

/// Active pin on a [`Collector`]; unpins on drop.
pub(crate) struct Guard<'a> {
    collector: &'a Collector,
    slot: usize,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.collector.slots[self.slot].0.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn retire_defers_until_unpinned() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let col = Collector::new();
        {
            let _g = col.pin();
            // Retire enough to trigger several advance attempts; none may
            // free while we are pinned (only the two-epochs-stale bag is
            // freed, and our pin stops the epoch from getting that far).
            for _ in 0..(3 * ADVANCE_EVERY) {
                col.retire(Box::into_raw(Box::new(Tracked)));
            }
            let before = DROPS.load(SeqCst);
            assert!(
                before < 3 * ADVANCE_EVERY as usize,
                "a pinned collector must not free everything"
            );
        }
        drop(col);
        assert_eq!(DROPS.load(SeqCst), 3 * ADVANCE_EVERY as usize);
    }

    #[test]
    fn unpinned_collector_reclaims_on_its_own() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let col = Collector::new();
        for _ in 0..(8 * ADVANCE_EVERY) {
            let _g = col.pin();
            col.retire(Box::into_raw(Box::new(Tracked)));
        }
        assert!(
            DROPS.load(SeqCst) > 0,
            "epoch advances must reclaim without waiting for collector drop"
        );
        drop(col);
        assert_eq!(DROPS.load(SeqCst), 8 * ADVANCE_EVERY as usize);
    }

    #[test]
    fn pin_slots_are_reentrant_across_threads() {
        let col = Arc::new(Collector::new());
        let threads = if cfg!(miri) { 3 } else { 8 };
        let iters = if cfg!(miri) { 20 } else { 2_000 };
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let col = col.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let _g = col.pin();
                        col.retire(Box::into_raw(Box::new(0u64)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
