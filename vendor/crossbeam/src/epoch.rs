//! Minimal epoch-based reclamation (EBR) backing [`crate::queue::SegQueue`].
//!
//! Lock-free linked structures cannot free a node the moment it is
//! unlinked: another thread may have loaded a pointer to it just before the
//! unlink and still be dereferencing it. This module provides the classic
//! three-epoch answer, scoped per collector (one per queue):
//!
//! * every operation **pins** the collector before loading any queue
//!   pointer and unpins when done; references never outlive the pin;
//! * unlinked nodes are **retired** into one of three bags, indexed by the
//!   epoch at retire time;
//! * the epoch **advances** only when every pinned slot publishes the
//!   current epoch, and advancing from `e` to `e+1` frees bag
//!   `(e+1) % 3` — garbage unlinked at least two epochs ago, which no
//!   still-pinned thread can reach.
//!
//! # Soundness invariants
//!
//! 1. While any slot publishes epoch `p`, the global epoch is `p` or
//!    `p+1`: the advance from `p+1` requires every occupied slot to
//!    publish `p+1`, and [`Collector::pin`] re-publishes until its slot
//!    matches a current read of the global epoch.
//! 2. A retire performed while pinned therefore reads epoch `p` or `p+1`
//!    and lands in bag `p % 3` or `(p+1) % 3` — never the bag the
//!    in-flight advance is freeing (`(g+1) % 3` with `g` current; the
//!    three values are distinct mod 3).
//! 3. The bag is freed *before* the new epoch is published, so no retire
//!    can target a bag while it is being drained.
//!
//! The push/pop hot path is lock-free (pin + CAS); reclamation
//! bookkeeping uses a try-lock so at most one thread advances at a time,
//! and a thread finding all [`PIN_SLOTS`] slots occupied spins for a free
//! one — acceptable for this workspace, where concurrency is bounded by
//! one progression worker per core.
//!
//! # Memory orderings
//!
//! Since PR 5 each site issues the weakest ordering the invariants above
//! need (full per-site table in `docs/SCHEDULER.md`), routed through an
//! [`OrderPolicy`] so the all-`SeqCst` baseline stays measurable. The one
//! edge that genuinely needs sequential consistency is the **pin/advance
//! handshake** — a Dekker-style store-load pattern:
//!
//! * a reader publishes its pin (slot store), *then* loads queue pointers;
//! * the advancer unlinks/retires, *then* loads the slots.
//!
//! If the advancer's slot scan misses a pin, the reader's later pointer
//! loads must see the unlink (and thus not resurrect the node being
//! freed). Acquire/release cannot order a store before a *load* on
//! different locations, so the pin publication and the advancer's slot
//! scan are separated by explicit `SeqCst` fences (kept unconditionally,
//! under either policy — they are correctness, not tuning).

use crate::order::{OrderPolicy, Tuned};
use crate::utils::CachePadded;
use core::marker::PhantomData;
use core::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use core::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
use std::cell::Cell;
use std::ptr;

/// Concurrent operations each occupy one pin slot; more simultaneous
/// operations than slots spin-wait for one to free up.
const PIN_SLOTS: usize = 32;

/// Try to advance the epoch (and free the oldest bag) every this many
/// retires.
const ADVANCE_EVERY: u64 = 64;

/// One pin slot: `0` when free, `(epoch << 1) | 1` when occupied. Padded
/// to its own cache line so pin/unpin traffic on neighbouring slots does
/// not false-share — each operation's hot slot stays core-private.
type Slot = CachePadded<AtomicUsize>;

/// Type-erased deferred free: `drop_fn(ptr)` reconstructs and drops the
/// original `Box` allocation.
struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    next: *mut Retired,
}

/// Treiber stack of retired allocations.
struct Bag(AtomicPtr<Retired>);

impl Bag {
    const fn new() -> Self {
        Bag(AtomicPtr::new(ptr::null_mut()))
    }

    fn push<P: OrderPolicy>(&self, node: *mut Retired) {
        loop {
            // Relaxed: the head is only dereferenced by `free_all`, whose
            // Acquire swap synchronizes with the Release CAS below; the
            // load here just supplies the CAS expectation.
            let head = self.0.load(P::ord(Relaxed));
            unsafe { (*node).next = head };
            // Release publishes `(*node).next` (and the retired payload's
            // reachability) to the draining swap. Failure reloads, Relaxed.
            if self
                .0
                .compare_exchange(head, node, P::ord(Release), P::ord(Relaxed))
                .is_ok()
            {
                return;
            }
        }
    }

    /// Detaches the whole bag and frees every allocation in it.
    fn free_all<P: OrderPolicy>(&self) {
        // Acquire pairs with the pushers' Release CAS: every `next` link
        // (and retired node) written before a push is visible before we
        // dereference it. Concurrent pushes either land before the swap
        // (freed now) or after (kept for a later drain) — RMWs on the head
        // are totally ordered, so no push can straddle the detach.
        let mut cur = self.0.swap(ptr::null_mut(), P::ord(Acquire));
        while !cur.is_null() {
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            unsafe { (node.drop_fn)(node.ptr) };
        }
    }
}

/// A per-structure epoch-based garbage collector, generic over the
/// [`OrderPolicy`] (see the module docs; [`Tuned`] is the audited default).
pub(crate) struct Collector<P: OrderPolicy = Tuned> {
    epoch: AtomicUsize,
    slots: [Slot; PIN_SLOTS],
    bags: [Bag; 3],
    retires: AtomicU64,
    /// Try-lock making the advance/free section exclusive. The push/pop
    /// hot path never takes it.
    advancing: AtomicBool,
    _policy: PhantomData<P>,
}

impl<P: OrderPolicy> Collector<P> {
    pub(crate) fn new() -> Self {
        Collector {
            epoch: AtomicUsize::new(0),
            slots: [const { CachePadded::new(AtomicUsize::new(0)) }; PIN_SLOTS],
            bags: [const { Bag::new() }; 3],
            retires: AtomicU64::new(0),
            advancing: AtomicBool::new(false),
            _policy: PhantomData,
        }
    }

    /// Pins the calling thread: until the returned guard drops, nothing
    /// retired from now on is freed, so nodes reachable from the live
    /// structure stay allocated.
    pub(crate) fn pin(&self) -> Guard<'_, P> {
        thread_local! {
            static SLOT_HINT: Cell<usize> = const { Cell::new(0) };
        }
        let hint = SLOT_HINT.with(Cell::get);
        // Acquire — this load (and the loop's re-reads below) is the
        // *grace-period edge*: reading epoch `e` synchronizes with the
        // Release store of the advance that published `e`, which in turn
        // happened-after every epoch-`e-1` pin was released (the advance
        // read their unpin stores) and after every retire it freed. A
        // thread pinned at `e` therefore happens-after every unlink
        // retired at `e-2` or earlier, so read-read coherence forbids its
        // queue-pointer loads from returning anything those bags can
        // free. Relaxed would leave a pinned-at-current-epoch thread able
        // to read an arbitrarily stale (already freed) pointer without
        // its slot blocking the advance.
        let mut epoch = self.epoch.load(P::ord(Acquire));
        let slot = 'claim: loop {
            for i in 0..PIN_SLOTS {
                let slot = (hint + i) % PIN_SLOTS;
                // The claim CAS is the pin *publication*: it must not be
                // reordered after the queue-pointer loads that follow the
                // pin (the Dekker edge in the module docs). A SeqCst RMW
                // plus the fence below provides that store-load ordering;
                // the failure case only moves to the next slot, Relaxed.
                if self.slots[slot]
                    .compare_exchange(0, (epoch << 1) | 1, SeqCst, Relaxed)
                    .is_ok()
                {
                    break 'claim slot;
                }
            }
            core::hint::spin_loop();
            epoch = self.epoch.load(P::ord(Acquire));
        };
        // Re-publish until the slot matches a current read of the global
        // epoch (soundness invariant 1: a slot never lags more than one
        // advance behind, because its stale value blocks the next one).
        loop {
            // The fence orders the slot publication (store) before the
            // epoch load *and* before every queue-pointer load the caller
            // performs under the guard; `try_advance` has the matching
            // fence between its retire and its slot scan. The epoch
            // re-read keeps Acquire for the grace-period edge (see the
            // pin's first load above): the *final* accepted read is what
            // places the guard after the advance that published its epoch.
            fence(SeqCst);
            let now = self.epoch.load(P::ord(Acquire));
            if now == epoch {
                break;
            }
            self.slots[slot].store((now << 1) | 1, P::ord(Relaxed));
            epoch = now;
        }
        SLOT_HINT.with(|h| h.set(slot));
        Guard {
            collector: self,
            slot,
        }
    }

    /// Defers freeing `ptr` (a `Box<T>` allocation) until no pinned thread
    /// can still hold a reference to it. Must be called while pinned.
    pub(crate) fn retire<T>(&self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut ()) {
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        let node = Box::into_raw(Box::new(Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            next: ptr::null_mut(),
        }));
        // Relaxed: the caller is pinned, so per-location coherence bounds
        // this read to `p` or `p+1` (invariant 1) — the bag choice is
        // safe for *any* value in that window (invariant 2), and the
        // Treiber push lands atomically before or after any concurrent
        // drain (RMW total order), never astride it.
        let epoch = self.epoch.load(P::ord(Relaxed));
        self.bags[epoch % 3].push::<P>(node);
        // Relaxed counter: only paces how often advances are attempted.
        if self.retires.fetch_add(1, P::ord(Relaxed)) % ADVANCE_EVERY == ADVANCE_EVERY - 1 {
            self.try_advance();
        }
    }

    /// Tries to advance the global epoch by one, freeing the bag that
    /// becomes unreachable. A no-op when another thread is already
    /// advancing or some slot still publishes an older epoch.
    fn try_advance(&self) {
        // Acquire on the try-lock pairs with the Release unlock so the
        // epoch/bag state the previous advancer left is visible.
        if self.advancing.swap(true, P::ord(Acquire)) {
            return;
        }
        // Relaxed: `epoch` is only written under this try-lock, whose
        // Acquire/Release pairing already carries the value.
        let epoch = self.epoch.load(P::ord(Relaxed));
        let current = (epoch << 1) | 1;
        // The matching half of the pin fence (module docs): order every
        // unlink/retire that led here before the slot scan, so a reader
        // whose pin the scan misses is guaranteed to see the unlink once
        // it reads the queue.
        fence(SeqCst);
        let all_current = self
            .slots
            .iter()
            .all(|s| matches!(s.load(SeqCst), v if v == 0 || v == current));
        if all_current {
            // Soundness invariant 3: free before publishing the new epoch,
            // so concurrent retires (which target `epoch % 3` or, for
            // threads pinned one advance behind, `(epoch + 2) % 3`) can
            // never push into the bag being drained.
            self.bags[(epoch + 1) % 3].free_all::<P>();
            // Release: the frees above happen-before anyone who reads the
            // new epoch (pin's loads are ordered by its SeqCst fence).
            self.epoch.store(epoch + 1, P::ord(Release));
        }
        self.advancing.store(false, P::ord(Release));
    }
}

impl<P: OrderPolicy> Drop for Collector<P> {
    fn drop(&mut self) {
        // Exclusive access: every deferred free can run now.
        for bag in &self.bags {
            bag.free_all::<P>();
        }
    }
}

/// Active pin on a [`Collector`]; unpins on drop.
pub(crate) struct Guard<'a, P: OrderPolicy = Tuned> {
    collector: &'a Collector<P>,
    slot: usize,
}

impl<P: OrderPolicy> Drop for Guard<'_, P> {
    fn drop(&mut self) {
        // Release: every pointer dereference made under the pin
        // happens-before an advancer that observes the slot free and
        // frees what those dereferences touched.
        self.collector.slots[self.slot].store(0, P::ord(Release));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::AlwaysSeqCst;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn retire_defers_until_unpinned() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let col = Collector::<Tuned>::new();
        {
            let _g = col.pin();
            // Retire enough to trigger several advance attempts; none may
            // free while we are pinned (only the two-epochs-stale bag is
            // freed, and our pin stops the epoch from getting that far).
            for _ in 0..(3 * ADVANCE_EVERY) {
                col.retire(Box::into_raw(Box::new(Tracked)));
            }
            let before = DROPS.load(SeqCst);
            assert!(
                before < 3 * ADVANCE_EVERY as usize,
                "a pinned collector must not free everything"
            );
        }
        drop(col);
        assert_eq!(DROPS.load(SeqCst), 3 * ADVANCE_EVERY as usize);
    }

    #[test]
    fn unpinned_collector_reclaims_on_its_own() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let col = Collector::<Tuned>::new();
        for _ in 0..(8 * ADVANCE_EVERY) {
            let _g = col.pin();
            col.retire(Box::into_raw(Box::new(Tracked)));
        }
        assert!(
            DROPS.load(SeqCst) > 0,
            "epoch advances must reclaim without waiting for collector drop"
        );
        drop(col);
        assert_eq!(DROPS.load(SeqCst), 8 * ADVANCE_EVERY as usize);
    }

    #[test]
    fn pin_slots_are_reentrant_across_threads() {
        let col = Arc::new(Collector::<Tuned>::new());
        let threads = if cfg!(miri) { 3 } else { 8 };
        let iters = if cfg!(miri) { 20 } else { 2_000 };
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let col = col.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let _g = col.pin();
                        col.retire(Box::into_raw(Box::new(0u64)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn seqcst_baseline_collector_reclaims_identically() {
        // The ablation policy runs the same algorithm with every ordering
        // upgraded; the reclamation behaviour must be indistinguishable.
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        DROPS.store(0, SeqCst);
        let col = Collector::<AlwaysSeqCst>::new();
        for _ in 0..(4 * ADVANCE_EVERY) {
            let _g = col.pin();
            col.retire(Box::into_raw(Box::new(Tracked)));
        }
        drop(col);
        assert_eq!(DROPS.load(SeqCst), 4 * ADVANCE_EVERY as usize);
    }
}
