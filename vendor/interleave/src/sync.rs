//! Modeled blocking lock.
//!
//! A real spinlock cannot be modeled as a literal CAS loop: under
//! exhaustive exploration the "keep spinning" branch is a schedule too,
//! and the space stops being finite. [`Lock`] models the *semantics* —
//! acquisition is a scheduling point that is only enabled while the lock
//! is free — which is both finite and exactly how one reasons about a
//! lock: who holds it, and in which order waiters get it.

use crate::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard};

/// A modeled mutual-exclusion lock guarding a `T`.
///
/// The guarded data is a plain value: the lock's exclusivity (checked by
/// the explorer) makes every critical section race-free, and operations
/// *inside* a critical section are deliberately not scheduling points —
/// other threads cannot observe intermediate states of data they need
/// this lock to reach, so interleaving them would only square the state
/// space without adding behaviours.
pub struct Lock<T> {
    held: Arc<AtomicBool>,
    data: Mutex<T>,
}

impl<T> Lock<T> {
    /// A new unlocked lock (not a scheduling point).
    pub fn new(data: T) -> Self {
        Lock {
            held: Arc::new(AtomicBool::new(false)),
            data: Mutex::new(data),
        }
    }

    /// Acquires the lock, blocking (visibly to the explorer) while held.
    pub fn lock(&self) -> LockGuard<'_, T> {
        let held = self.held.clone();
        crate::block_on_cond(move || !held.peek());
        // Exactly one thread runs between scheduling points, so the
        // condition still holds here; taking the flag cannot race.
        self.held.poke(true);
        LockGuard {
            lock: self,
            guard: Some(self.data.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Whether the lock is currently held (non-yielding; for final-state
    /// assertions).
    pub fn is_held(&self) -> bool {
        self.held.peek()
    }
}

/// RAII guard: releases the lock on drop (the release is a scheduling
/// point, like a real unlock's store).
pub struct LockGuard<'a, T> {
    lock: &'a Lock<T>,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> core::ops::Deref for LockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live")
    }
}

impl<T> core::ops::DerefMut for LockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live")
    }
}

impl<T> Drop for LockGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        // The release store is observable by blocked acquirers: one
        // scheduling point.
        self.lock.held.store(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_serializes_critical_sections() {
        crate::model(|| {
            let l = Arc::new(Lock::new(0u32));
            let l2 = l.clone();
            let t = crate::thread::spawn(move || {
                let mut g = l2.lock();
                let v = *g; // non-atomic read-modify-write, safe under the lock
                *g = v + 1;
            });
            {
                let mut g = l.lock();
                let v = *g;
                *g = v + 1;
            }
            t.join();
            assert_eq!(*l.lock(), 2, "the lock makes the RMW atomic");
            assert!(!l.is_held());
        });
    }
}
