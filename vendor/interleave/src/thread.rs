//! Modeled threads: spawn and join under explorer control.

use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread; [`join`](JoinHandle::join) blocks the
/// caller (as a condition the explorer understands) until it finishes.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread running `f`. The new thread starts parked; its
/// first instruction is itself a scheduling point, so "the spawned thread
/// runs everything before the parent moves" and "the parent finishes
/// first" are both explored.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let tid = crate::register_thread(Box::new(move || {
        let value = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    }));
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its value. Blocking is
    /// visible to the explorer: every interleaving of the remaining
    /// threads is still explored while this one waits.
    pub fn join(self) -> T {
        crate::block_on_thread(self.tid);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread finished, result must be present")
    }
}
