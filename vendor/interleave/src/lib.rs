//! Bounded exhaustive interleaving checking for modeled concurrent
//! algorithms — the workspace's loom-style proof harness.
//!
//! "It passed the stress tests" is not an argument for a lock-free
//! protocol: a stress run samples a few billion interleavings out of a
//! space it does not control, and the one that loses a wake-up or frees a
//! node early may need a context switch at exactly one instruction. This
//! crate runs a *model* of the algorithm — a closure using this crate's
//! [`atomic`] types, [`thread::spawn`] and [`sync::Lock`] — under **every
//! schedule** (or every schedule within a preemption bound), driven by a
//! depth-first trail over the scheduler's choice points:
//!
//! ```
//! use interleave::{model, atomic::AtomicUsize};
//! use std::sync::Arc;
//!
//! let report = model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = x.clone();
//!     let t = interleave::thread::spawn(move || { x2.fetch_add(1); });
//!     x.fetch_add(1);
//!     t.join();
//!     assert_eq!(x.load(), 2, "fetch_add can never lose an increment");
//! });
//! assert!(report.schedules >= 2, "both orders of the two RMWs explored");
//! ```
//!
//! # How it works
//!
//! Each run executes the model on real threads held in lockstep: every
//! model-atomic operation is a *scheduling point* where the thread parks
//! until the explorer grants it the token, so exactly one thread runs
//! between consecutive points and every run realizes one interleaving.
//! The explorer records each decision (`chosen index`, `number of enabled
//! threads`) in a trail; after a run it backtracks the trail to the next
//! unexplored choice, re-executes the (deterministic) model along the
//! prefix, and diverges — classic stateless DFS model checking. A failed
//! assertion anywhere in the model aborts the run and reports the trail
//! that produced it.
//!
//! # What it proves, and what it does not
//!
//! Exploration is **sequentially consistent**: atomic operations are
//! modeled as indivisible and globally ordered, so the checker proves
//! *protocol-level* properties — no lost element, no lost wake-up, no
//! freed-while-reachable node — over every thread interleaving, which is
//! where almost all lock-free bugs live. It does **not** model weak-memory
//! reordering (a `Relaxed` store becoming visible late); that half of the
//! argument belongs to Miri's weak-memory emulation, which CI runs over
//! the *real* implementation with `-Zmiri-many-seeds`. The two tools are
//! deliberately complementary: this crate exhausts schedules on a small
//! model, Miri samples weak behaviours on the real code. The ordering
//! table in `docs/SCHEDULER.md` cites, per protocol, which model in
//! `vendor/interleave/tests/` covers it.
//!
//! # Bounds
//!
//! Exhaustive exploration is exponential in total scheduling points, so
//! models must stay small (two or three threads, a handful of operations
//! each). [`Options::preemption_bound`] caps *forced* context switches per
//! schedule — the CHESS result: almost every real concurrency bug
//! manifests within two or three preemptions — which turns an intractable
//! model into a few thousand schedules while keeping the bug-finding
//! power; [`Options::max_schedules`] and [`Options::max_steps`] are hard
//! backstops that fail loudly rather than letting a model quietly explode
//! or spin.

#![warn(missing_docs)]

pub mod atomic;
pub mod sync;
pub mod thread;

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration limits and bounds.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Hard cap on explored schedules; exceeding it fails the model run
    /// (shrink the model or set a [`Options::preemption_bound`]).
    pub max_schedules: usize,
    /// Hard cap on scheduling points in a single run (catches models that
    /// loop forever under some interleaving).
    pub max_steps: usize,
    /// When `Some(b)`, a schedule may contain at most `b` *preemptions* —
    /// switches away from a thread that could have continued. `None`
    /// explores every interleaving.
    pub preemption_bound: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_schedules: 200_000,
            max_steps: 5_000,
            preemption_bound: None,
        }
    }
}

/// Summary of a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
}

/// A model failure: the panic message of the failed assertion (or
/// deadlock/limit diagnosis) plus the schedule that produced it.
#[derive(Debug)]
pub struct Failure {
    /// Why the model failed (assertion message, "deadlock", ...).
    pub message: String,
    /// 1-based index of the failing schedule.
    pub schedule: usize,
    /// The decision trail of the failing schedule: `(chosen, enabled)`
    /// per scheduling point — enough to reason about the interleaving.
    pub trail: Vec<(usize, usize)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed on schedule {}: {}\ntrail (chosen/enabled): {:?}",
            self.schedule, self.message, self.trail
        )
    }
}

/// Thread lifecycle as the explorer sees it.
#[derive(PartialEq)]
enum Status {
    /// Holds the token and is executing model code.
    Running,
    /// Parked at a scheduling point, eligible to be granted.
    AtYield,
    /// Parked on a condition ([`BlockKind`]); eligible only when it holds.
    Blocked,
    /// Model closure returned (or unwound).
    Finished,
}

/// What a [`Status::Blocked`] thread is waiting for.
enum BlockKind {
    /// Another model thread to finish (`join`).
    OnThread(usize),
    /// A predicate over model state (e.g. a modeled lock becoming free).
    /// Evaluated by the explorer while every thread is parked, so the
    /// read races nothing.
    OnCond(Box<dyn Fn() -> bool + Send>),
}

struct SchedState {
    statuses: Vec<Status>,
    blocks: Vec<Option<BlockKind>>,
    /// Token holder; `None` while the explorer is deciding.
    active: Option<usize>,
    /// Set on the first model panic: every parked thread unwinds.
    abort: bool,
    failure: Option<String>,
    real: Vec<std::thread::JoinHandle<()>>,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // A panicking model thread is the *expected* failure path; poison
        // carries no information the abort flag doesn't.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, g: MutexGuard<'a, SchedState>) -> MutexGuard<'a, SchedState> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind model threads when a sibling failed; the
/// wrapper recognizes it and does not report it as a model failure.
struct AbortToken;

fn with_ctx<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> R {
    CTX.with(|c| {
        let ctx = c.borrow();
        let (shared, tid) = ctx
            .as_ref()
            .expect("interleave model types may only be used inside interleave::model");
        f(shared, *tid)
    })
}

/// Parks until the explorer grants this thread the token.
fn wait_for_grant(shared: &Shared, tid: usize) {
    let mut st = shared.lock();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        if st.active == Some(tid) {
            break;
        }
        st = shared.wait(st);
    }
    st.active = None;
    st.blocks[tid] = None;
    st.statuses[tid] = Status::Running;
    shared.cv.notify_all();
}

/// One scheduling point: park, let the explorer pick who runs next.
pub(crate) fn step() {
    with_ctx(|shared, tid| {
        {
            let mut st = shared.lock();
            st.statuses[tid] = Status::AtYield;
            shared.cv.notify_all();
        }
        wait_for_grant(shared, tid);
    });
}

/// A scheduling point that is only re-enabled once `kind` holds.
pub(crate) fn block(kind: BlockKind) {
    with_ctx(|shared, tid| {
        {
            let mut st = shared.lock();
            st.statuses[tid] = Status::Blocked;
            st.blocks[tid] = Some(kind);
            shared.cv.notify_all();
        }
        wait_for_grant(shared, tid);
    });
}

pub(crate) fn block_on_thread(target: usize) {
    block(BlockKind::OnThread(target));
}

pub(crate) fn block_on_cond(cond: impl Fn() -> bool + Send + 'static) {
    block(BlockKind::OnCond(Box::new(cond)));
}

/// Registers a new model thread and starts its OS thread (parked until
/// first grant). Returns the new thread's id.
pub(crate) fn register_thread(f: Box<dyn FnOnce() + Send>) -> usize {
    with_ctx(|shared, _| spawn_worker(shared, f))
}

fn spawn_worker(shared: &Arc<Shared>, f: Box<dyn FnOnce() + Send>) -> usize {
    let tid = {
        let mut st = shared.lock();
        st.statuses.push(Status::AtYield);
        st.blocks.push(None);
        st.statuses.len() - 1
    };
    let shared2 = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("interleave-{tid}"))
        .spawn(move || run_worker(shared2, tid, f))
        .expect("spawn interleave worker");
    shared.lock().real.push(handle);
    tid
}

fn run_worker(shared: Arc<Shared>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((shared.clone(), tid)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        wait_for_grant(&shared, tid);
        f();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = shared.lock();
    st.statuses[tid] = Status::Finished;
    if let Err(payload) = outcome {
        if !payload.is::<AbortToken>() && st.failure.is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            st.failure = Some(msg);
            st.abort = true;
        }
    }
    shared.cv.notify_all();
}

/// Explores every schedule of `f` (within `Options::default()` bounds),
/// panicking with the failing trail if any interleaving violates a model
/// assertion. Returns how many schedules were executed.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Options::default(), f)
}

/// [`model`] with explicit [`Options`].
pub fn model_with<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match try_model(opts, f) {
        Ok(report) => report,
        Err(failure) => panic!("interleave: {failure}"),
    }
}

/// Runs the exploration and asserts that **some** interleaving fails,
/// returning that failure. This is how the checker proves it has teeth:
/// a deliberately broken protocol must produce a violation, otherwise the
/// model (or the explorer) is too weak to trust on the correct one.
///
/// # Panics
///
/// Panics if every schedule passes.
pub fn model_expect_violation<F>(opts: Options, f: F) -> Failure
where
    F: Fn() + Send + Sync + 'static,
{
    match try_model(opts, f) {
        Ok(report) => panic!(
            "interleave: expected a violation but all {} schedules passed \
             (model too weak or bug not modeled)",
            report.schedules
        ),
        Err(failure) => failure,
    }
}

/// The exploration loop: run, backtrack the trail, repeat.
fn try_model<F>(opts: Options, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut trail: Vec<(usize, usize)> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        if schedules > opts.max_schedules {
            return Err(Failure {
                message: format!(
                    "exceeded max_schedules = {} — shrink the model or set a \
                     preemption_bound",
                    opts.max_schedules
                ),
                schedule: schedules,
                trail,
            });
        }
        run_once(&opts, &mut trail, f.clone()).map_err(|message| Failure {
            message,
            schedule: schedules,
            trail: trail.clone(),
        })?;
        if !advance(&mut trail) {
            return Ok(Report { schedules });
        }
    }
}

/// Moves the trail to the next unexplored schedule; `false` when the
/// space is exhausted.
fn advance(trail: &mut Vec<(usize, usize)>) -> bool {
    while let Some(&(chosen, enabled)) = trail.last() {
        if chosen + 1 < enabled {
            trail.last_mut().expect("nonempty").0 += 1;
            return true;
        }
        trail.pop();
    }
    false
}

/// Executes one schedule: replays the trail prefix, extends it with
/// first-choice decisions past the end.
fn run_once(
    opts: &Options,
    trail: &mut Vec<(usize, usize)>,
    f: Arc<dyn Fn() + Send + Sync>,
) -> Result<(), String> {
    let shared = Arc::new(Shared {
        state: Mutex::new(SchedState {
            statuses: Vec::new(),
            blocks: Vec::new(),
            active: None,
            abort: false,
            failure: None,
            real: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let f2 = f.clone();
    spawn_worker(&shared, Box::new(move || f2()));

    let mut step_idx = 0usize;
    let mut last_granted: Option<usize> = None;
    let mut preemptions = 0usize;
    let result = loop {
        let mut st = shared.lock();
        // Wait for quiescence: nobody running, no token outstanding.
        while st.active.is_some() || st.statuses.contains(&Status::Running) {
            st = shared.wait(st);
        }
        if st.abort {
            // Wait for every thread to unwind, then report.
            while !st.statuses.iter().all(|s| *s == Status::Finished) {
                shared.cv.notify_all();
                st = shared.wait(st);
            }
            break Err(st
                .failure
                .take()
                .unwrap_or_else(|| "model aborted without a message".into()));
        }
        if st.statuses.iter().all(|s| *s == Status::Finished) {
            break Ok(());
        }
        // Enabled = at a yield point, or blocked on a satisfied condition.
        let enabled: Vec<usize> = (0..st.statuses.len())
            .filter(|&tid| match st.statuses[tid] {
                Status::AtYield => true,
                Status::Blocked => match &st.blocks[tid] {
                    Some(BlockKind::OnThread(t)) => st.statuses[*t] == Status::Finished,
                    Some(BlockKind::OnCond(cond)) => cond(),
                    None => unreachable!("blocked thread without a block kind"),
                },
                _ => false,
            })
            .collect();
        if enabled.is_empty() {
            st.abort = true;
            shared.cv.notify_all();
            while !st.statuses.iter().all(|s| *s == Status::Finished) {
                st = shared.wait(st);
            }
            break Err("deadlock: no thread is enabled".into());
        }
        // The preemption bound: once spent, a still-enabled previous
        // thread is the only choice (a switch away from it would be
        // another preemption).
        let options: Vec<usize> = match (opts.preemption_bound, last_granted) {
            (Some(bound), Some(last)) if preemptions >= bound && enabled.contains(&last) => {
                vec![last]
            }
            _ => enabled,
        };
        if step_idx >= opts.max_steps {
            st.abort = true;
            shared.cv.notify_all();
            while !st.statuses.iter().all(|s| *s == Status::Finished) {
                st = shared.wait(st);
            }
            break Err(format!(
                "exceeded max_steps = {} in one run (model loops under this schedule?)",
                opts.max_steps
            ));
        }
        let chosen_idx = if step_idx < trail.len() {
            let (chosen, recorded) = trail[step_idx];
            if recorded != options.len() {
                st.abort = true;
                shared.cv.notify_all();
                while !st.statuses.iter().all(|s| *s == Status::Finished) {
                    st = shared.wait(st);
                }
                break Err(format!(
                    "nondeterministic model: step {step_idx} had {recorded} options \
                     on a previous run, {} now (models must not read real time, \
                     OS randomness, or ambient thread state)",
                    options.len()
                ));
            }
            chosen
        } else {
            trail.push((0, options.len()));
            0
        };
        let tid = options[chosen_idx];
        if let Some(last) = last_granted {
            // A preemption is a switch away from a thread that could have
            // continued; switches forced by a block or exit are free.
            if last != tid && st.statuses[last] == Status::AtYield {
                preemptions += 1;
            }
        }
        last_granted = Some(tid);
        step_idx += 1;
        st.active = Some(tid);
        shared.cv.notify_all();
        drop(st);
    };
    let handles = std::mem::take(&mut shared.lock().real);
    for h in handles {
        let _ = h.join();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn two_increments_explore_both_orders_and_never_lose_one() {
        let report = model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = x.clone();
            let t = crate::thread::spawn(move || {
                x2.fetch_add(1);
            });
            x.fetch_add(1);
            t.join();
            assert_eq!(x.load(), 2);
        });
        assert!(report.schedules >= 2, "got {}", report.schedules);
    }

    #[test]
    fn classic_store_load_race_is_found() {
        // The textbook non-atomic-increment race: load, then store load+1.
        // Some interleaving loses an increment; the checker must find it.
        let failure = model_expect_violation(Options::default(), || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = x.clone();
            let t = crate::thread::spawn(move || {
                let v = x2.load();
                x2.store(v + 1);
            });
            let v = x.load();
            x.store(v + 1);
            t.join();
            assert_eq!(x.load(), 2, "lost increment");
        });
        assert!(failure.message.contains("lost increment"));
        assert!(!failure.trail.is_empty());
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let failure = model_expect_violation(Options::default(), || {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = flag.clone();
            // Blocks on a condition nobody ever makes true.
            crate::block_on_cond(move || f2.peek() == 1);
            flag.store(1); // unreachable
        });
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn preemption_bound_caps_the_schedule_count() {
        let count = |bound: Option<usize>| {
            model_with(
                Options {
                    preemption_bound: bound,
                    ..Options::default()
                },
                || {
                    let x = Arc::new(AtomicUsize::new(0));
                    let x2 = x.clone();
                    let t = crate::thread::spawn(move || {
                        for _ in 0..4 {
                            x2.fetch_add(1);
                        }
                    });
                    for _ in 0..4 {
                        x.fetch_add(1);
                    }
                    t.join();
                    assert_eq!(x.load(), 8);
                },
            )
            .schedules
        };
        let full = count(None);
        let bounded = count(Some(1));
        assert!(
            bounded < full,
            "bound must shrink the space: {bounded} vs {full}"
        );
    }

    #[test]
    fn max_steps_catches_runaway_models() {
        let failure = model_expect_violation(
            Options {
                max_steps: 50,
                ..Options::default()
            },
            || {
                let x = AtomicUsize::new(0);
                loop {
                    x.fetch_add(1); // never terminates
                }
            },
        );
        assert!(failure.message.contains("max_steps"), "{}", failure.message);
    }
}
