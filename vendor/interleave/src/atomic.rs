//! Modeled atomics: every operation is one scheduling point.
//!
//! These mirror the `core::sync::atomic` API shape (minus orderings —
//! exploration is sequentially consistent, see the crate docs) but park
//! the calling model thread at each operation so the explorer can
//! interleave it against every other thread. The backing storage is a
//! real atomic accessed `SeqCst`; since only one model thread runs
//! between scheduling points, each operation is indivisible and globally
//! ordered, which is exactly the SC semantics the checker explores.

use core::sync::atomic::Ordering::SeqCst;

/// A modeled `usize` atomic.
#[derive(Debug, Default)]
pub struct AtomicUsize(core::sync::atomic::AtomicUsize);

impl AtomicUsize {
    /// A new modeled atomic. Construction is not a scheduling point (the
    /// value is not shared until the model shares it).
    pub fn new(v: usize) -> Self {
        AtomicUsize(core::sync::atomic::AtomicUsize::new(v))
    }

    /// Atomic load (one scheduling point).
    pub fn load(&self) -> usize {
        crate::step();
        self.0.load(SeqCst)
    }

    /// Atomic store (one scheduling point).
    pub fn store(&self, v: usize) {
        crate::step();
        self.0.store(v, SeqCst);
    }

    /// Atomic swap (one scheduling point).
    pub fn swap(&self, v: usize) -> usize {
        crate::step();
        self.0.swap(v, SeqCst)
    }

    /// Atomic fetch-add (one scheduling point).
    pub fn fetch_add(&self, v: usize) -> usize {
        crate::step();
        self.0.fetch_add(v, SeqCst)
    }

    /// Atomic fetch-or (one scheduling point).
    pub fn fetch_or(&self, v: usize) -> usize {
        crate::step();
        self.0.fetch_or(v, SeqCst)
    }

    /// Atomic compare-exchange (one scheduling point for the whole RMW).
    ///
    /// # Errors
    ///
    /// Returns the observed value when it differs from `expected`.
    pub fn compare_exchange(&self, expected: usize, new: usize) -> Result<usize, usize> {
        crate::step();
        self.0.compare_exchange(expected, new, SeqCst, SeqCst)
    }

    /// Non-yielding read for **explorer-side** use: final-state assertions
    /// after every thread joined, and [`crate::sync`] block conditions
    /// (which the explorer evaluates while all threads are parked, so the
    /// read races nothing). Using it *instead of* [`Self::load`] inside a
    /// racing model thread would hide interleavings — don't.
    pub fn peek(&self) -> usize {
        self.0.load(SeqCst)
    }

    /// Non-yielding write, for state that is already serialized by an
    /// enclosing modeled lock (see [`AtomicBool::poke`]): the mutation's
    /// scheduling point is the lock's, and a second one would only
    /// inflate the schedule space.
    pub fn poke(&self, v: usize) {
        self.0.store(v, SeqCst);
    }
}

/// A modeled `bool` atomic.
#[derive(Debug, Default)]
pub struct AtomicBool(core::sync::atomic::AtomicBool);

impl AtomicBool {
    /// A new modeled atomic (not a scheduling point).
    pub fn new(v: bool) -> Self {
        AtomicBool(core::sync::atomic::AtomicBool::new(v))
    }

    /// Atomic load (one scheduling point).
    pub fn load(&self) -> bool {
        crate::step();
        self.0.load(SeqCst)
    }

    /// Atomic store (one scheduling point).
    pub fn store(&self, v: bool) {
        crate::step();
        self.0.store(v, SeqCst);
    }

    /// Atomic swap (one scheduling point).
    pub fn swap(&self, v: bool) -> bool {
        crate::step();
        self.0.swap(v, SeqCst)
    }

    /// Non-yielding read (see [`AtomicUsize::peek`]).
    pub fn peek(&self) -> bool {
        self.0.load(SeqCst)
    }

    /// Non-yielding write, for completing an operation whose scheduling
    /// point already happened (e.g. [`crate::sync::Lock`] takes its flag
    /// right after the explorer granted a blocked acquire — no other
    /// thread can have run in between, so a second point would only
    /// inflate the schedule space without adding behaviours).
    pub fn poke(&self, v: bool) {
        self.0.store(v, SeqCst);
    }
}
