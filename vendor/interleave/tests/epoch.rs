//! Exhaustive interleaving checks of the three-epoch reclamation protocol
//! — the model behind `vendor/crossbeam/src/epoch.rs`.
//!
//! The modeled subset: one reader that pins (publish slot, re-publish
//! until the slot matches a fresh epoch read), dereferences the shared
//! pointer, and unpins; one reclaimer that unlinks the node, retires it
//! into bag `epoch % 3`, and attempts three advances (each: check the
//! slot, free bag `(epoch+1) % 3`, publish `epoch + 1`). The safety
//! property is the module's whole reason to exist: **the reader's
//! dereference never touches a freed node**, in any interleaving. The
//! second test removes the slot check from the advance and requires the
//! checker to produce the use-after-free — the demonstration that a
//! passing first test is evidence, not luck.
//!
//! Exploration runs under a preemption bound (see the crate docs): the
//! unbounded space of this model is ~10⁶ schedules; two preemptions
//! already cover every "reader pauses at the worst instruction" scenario
//! the protocol must survive, because each thread is straight-line code
//! between its loops.

use interleave::atomic::{AtomicBool, AtomicUsize};
use interleave::{model_expect_violation, model_with, Options};
use std::sync::Arc;

const NODE: usize = 1;

struct Ebr {
    epoch: AtomicUsize,
    /// One reader slot: 0 free, `(epoch << 1) | 1` pinned.
    slot: AtomicUsize,
    /// One-deep retirement bags, by epoch mod 3 (0 = empty).
    bags: [AtomicUsize; 3],
    /// The shared structure: a single node the reader dereferences.
    ptr: AtomicUsize,
    freed: AtomicBool,
    /// Advance variant: `true` checks the pin slot (the real protocol),
    /// `false` frees unconditionally (the planted bug).
    check_slot: bool,
}

impl Ebr {
    fn new(check_slot: bool) -> Self {
        Ebr {
            epoch: AtomicUsize::new(0),
            slot: AtomicUsize::new(0),
            bags: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            ptr: AtomicUsize::new(NODE),
            freed: AtomicBool::new(false),
            check_slot,
        }
    }

    /// The reader: pin → deref → unpin, exactly the collector's protocol
    /// (including the re-publish loop that enforces soundness invariant 1).
    fn reader(&self) {
        let mut e = self.epoch.load();
        self.slot.store((e << 1) | 1);
        loop {
            let now = self.epoch.load();
            if now == e {
                break;
            }
            self.slot.store((now << 1) | 1);
            e = now;
        }
        let n = self.ptr.load();
        if n != 0 {
            // The dereference: the node we can still reach from the live
            // structure must not have been freed.
            assert!(
                !self.freed.load(),
                "use-after-free: pinned deref hit a freed node"
            );
        }
        self.slot.store(0);
    }

    /// The reclaimer: unlink, retire, then three advance attempts.
    fn reclaimer(&self) {
        let n = self.ptr.swap(0);
        if n != 0 {
            let e = self.epoch.load();
            self.bags[e % 3].store(n);
        }
        for _ in 0..3 {
            let e = self.epoch.load();
            if self.check_slot {
                let s = self.slot.load();
                if s != 0 && s != (e << 1) | 1 {
                    // A pinned slot lags this epoch: the advance (and the
                    // free it would perform) must wait.
                    continue;
                }
            }
            let victim = self.bags[(e + 1) % 3].swap(0);
            if victim != 0 {
                self.freed.store(true);
            }
            self.epoch.store(e + 1);
        }
    }
}

#[test]
fn pinned_reader_never_sees_a_freed_node() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let ebr = Arc::new(Ebr::new(true));
            let e2 = ebr.clone();
            let reclaimer = interleave::thread::spawn(move || e2.reclaimer());
            ebr.reader();
            reclaimer.join();
        },
    );
    assert!(report.schedules > 50, "the race was really explored");
}

#[test]
fn checker_finds_the_advance_without_slot_check_bug() {
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let ebr = Arc::new(Ebr::new(false));
            let e2 = ebr.clone();
            let reclaimer = interleave::thread::spawn(move || e2.reclaimer());
            ebr.reader();
            reclaimer.join();
        },
    );
    assert!(
        failure.message.contains("use-after-free"),
        "unexpected failure: {failure}"
    );
}
