//! Exhaustive interleaving checks of the contention window's sampling
//! claim — `crates/pioman/src/signal.rs` (`ContentionWindow::observe`):
//! concurrent samplers race to claim the delta since the last accepted
//! sample with a compare-exchange on the acquisition watermark, and the
//! winner advances the contended watermark with `fetch_max`.
//!
//! The property: however samplers interleave, the *total* contention they
//! fold into the EWMA never exceeds the contention that actually
//! happened — an over-count is a spurious contention spike that widens
//! every batch on the core (the failure `observe`'s doc comment calls
//! out); an under-count is one EWMA step of delay and explicitly
//! tolerated. The planted-bug twin advances the contended watermark with
//! the load-then-store `fetch_max` forbids: a claim winner that stalls
//! between its load and its store lets a second winner consume the same
//! contended delta, and the stalled store then drags the watermark
//! backward — the checker must find the double-count.

use interleave::atomic::AtomicUsize;
use interleave::{model_expect_violation, model_with, Options};
use std::sync::Arc;

/// `fetch_max` as the CAS loop it abbreviates (each attempt one
/// scheduling point, like the real RMW under contention). Returns the
/// previous value.
fn fetch_max(counter: &AtomicUsize, v: usize) -> usize {
    loop {
        let cur = counter.load();
        if cur >= v {
            return cur;
        }
        if counter.compare_exchange(cur, v).is_ok() {
            return cur;
        }
    }
}

/// The claim protocol of `observe`, stripped to its two watermarks.
struct Window {
    last_acq: AtomicUsize,
    last_cont: AtomicUsize,
}

impl Window {
    fn new() -> Self {
        Window {
            last_acq: AtomicUsize::new(0),
            last_cont: AtomicUsize::new(0),
        }
    }

    /// One sample against cumulative totals `(acq, cont)`; returns the
    /// contended delta this sampler folded into its EWMA (0 for losers).
    /// `torn` selects the planted-bug watermark update.
    fn sample(&self, acq: usize, cont: usize, torn: bool) -> usize {
        let prev_a = self.last_acq.load();
        let delta_a = acq.saturating_sub(prev_a);
        if delta_a == 0 {
            return 0;
        }
        if self.last_acq.compare_exchange(prev_a, acq).is_err() {
            return 0; // a racing sampler won this window
        }
        let prev_c = if torn {
            // BUG: load-then-store. A stall between the two lets another
            // winner read the pre-update watermark (double-count) and the
            // late store drags the watermark backward.
            let prev = self.last_cont.load();
            self.last_cont.store(cont.max(prev));
            prev
        } else {
            fetch_max(&self.last_cont, cont)
        };
        cont.saturating_sub(prev_c).min(delta_a)
    }
}

/// Two samplers read the cumulative counters at different instants: the
/// early one saw a contended burst (10 acquisitions, all contended), the
/// late one saw 10 further *uncontended* acquisitions on top. True total
/// contention: 10 — any higher fold is a spurious spike.
fn run(torn: bool) {
    let w = Arc::new(Window::new());
    let w2 = w.clone();
    let early = interleave::thread::spawn(move || w2.sample(10, 10, torn));
    let late = w.sample(20, 10, torn);
    let early = early.join();
    assert!(
        early + late <= 10,
        "spurious contention: samplers folded {} of 10 contended events",
        early + late
    );
}

#[test]
fn claim_cas_plus_fetch_max_never_double_counts_contention() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || run(false),
    );
    assert!(report.schedules > 5, "the race was really explored");
}

#[test]
fn checker_finds_the_torn_watermark_double_count() {
    // The schedule: the early sampler claims acq 0→10, loads the
    // contended watermark (0), and stalls. The late sampler claims
    // 10→20, still reads watermark 0, and folds a contended delta of 10;
    // the early one wakes, stores its stale 10 over the watermark, and
    // folds its own 10 — the same 10 contended events counted twice,
    // reported as 20 where 10 happened.
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || run(true),
    );
    assert!(
        failure.message.contains("spurious contention"),
        "unexpected failure: {failure}"
    );
}
