//! Exhaustive interleaving checks of the socket-overflow spill/claim
//! accounting — `crates/pioman/src/manager.rs` (`TaskManager::spill` /
//! `claim_overflow`): spillers push relocated tasks into the overflow
//! lanes and advance the unlocked `overflow_len` hint with a `fetch_add`,
//! while claimers gate on the hint, pop, and retire it one `fetch_sub`
//! per task actually taken.
//!
//! The lane structure itself is covered by the `msqueue`/`qos_lanes`
//! models; what only an interleaving explorer can prove is the *hint
//! protocol*: however spillers and claimers race, every spilled task is
//! eventually visible to a hint-gated claimer (no lost spill) and the
//! hint settles to the exact queue depth. The planted-bug twin replaces
//! the spiller's `fetch_add` with the load-then-store it guards against:
//! two racing spills publish one task's worth of hint, the second task
//! becomes invisible to every gate-respecting claimer, and the checker
//! must find that schedule.

use interleave::atomic::AtomicUsize;
use interleave::sync::Lock;
use interleave::{model_expect_violation, model_with, Options};
use std::collections::VecDeque;
use std::sync::Arc;

/// Decrement on the modeled counter (`fetch_sub(1)`: the modeled atomics
/// expose only `fetch_add`, and `usize` wrap-around is the same RMW).
fn dec(counter: &AtomicUsize) {
    counter.fetch_add(usize::MAX);
}

/// The overflow tier distilled to its accounting: the lanes collapse to
/// one locked deque (their internals are proven elsewhere), the unlocked
/// depth hint keeps its exact update protocol.
struct Overflow {
    lanes: Lock<VecDeque<usize>>,
    len: AtomicUsize,
}

impl Overflow {
    fn new() -> Self {
        Overflow {
            lanes: Lock::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// `TaskManager::spill`'s per-task publication: push, then advance
    /// the hint with an atomic RMW.
    fn spill(&self, task: usize) {
        self.lanes.lock().push_back(task);
        self.len.fetch_add(1);
    }

    /// The planted bug: a torn load-then-store hint update. Two racing
    /// spillers can both read `n` and both publish `n + 1`.
    fn spill_racy(&self, task: usize) {
        self.lanes.lock().push_back(task);
        let n = self.len.load();
        self.len.store(n + 1);
    }

    /// `claim_overflow`: gate on the hint, bound the pops by the depth at
    /// arrival, retire the hint only for tasks actually popped.
    fn claim(&self) -> Vec<usize> {
        let mut taken = Vec::new();
        let mut pass = self.len.load();
        while pass > 0 {
            let Some(task) = self.lanes.lock().pop_front() else {
                break;
            };
            pass -= 1;
            dec(&self.len);
            taken.push(task);
        }
        taken
    }

    /// Explorer-side drain **respecting the hint gate**, exactly like a
    /// real claimer: a task the settled hint does not cover stays
    /// stranded — which is the lost-spill outcome the assertions reject.
    fn drain_gated(&self) -> Vec<usize> {
        let mut out = Vec::new();
        while self.len.peek() > 0 {
            let task = self
                .lanes
                .lock()
                .pop_front()
                .expect("hint covered a task that is not there");
            dec(&self.len);
            out.push(task);
        }
        out
    }
}

#[test]
fn racing_spills_and_claims_never_strand_a_task() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let ovf = Arc::new(Overflow::new());
            let o2 = ovf.clone();
            let o3 = ovf.clone();
            let spiller = interleave::thread::spawn(move || {
                o2.spill(2);
                o2.spill(3);
            });
            let claimer = interleave::thread::spawn(move || o3.claim());
            ovf.spill(4);
            let claimed = claimer.join();
            spiller.join();
            let mut all = claimed;
            all.extend(ovf.drain_gated());
            assert!(
                ovf.lanes.lock().is_empty(),
                "lost spill: task invisible to the hint gate"
            );
            all.sort_unstable();
            assert_eq!(
                all,
                vec![2, 3, 4],
                "every spilled task claimed exactly once"
            );
        },
    );
    assert!(report.schedules > 100, "the race was really explored");
}

#[test]
fn checker_finds_the_torn_hint_lost_spill() {
    // Two concurrent spills through the load-then-store twin: both read
    // len = 0 and both store 1, so the settled hint covers one task while
    // the lanes hold two — every gate-respecting claimer stops early and
    // the second task is stranded forever. The checker must find that
    // schedule; this is the proof the `fetch_add` above is load-bearing.
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let ovf = Arc::new(Overflow::new());
            let o2 = ovf.clone();
            let spiller = interleave::thread::spawn(move || o2.spill_racy(2));
            ovf.spill_racy(3);
            spiller.join();
            let _ = ovf.drain_gated();
            assert!(
                ovf.lanes.lock().is_empty(),
                "lost spill: task invisible to the hint gate"
            );
        },
    );
    assert!(
        failure.message.contains("lost spill"),
        "unexpected failure: {failure}"
    );
}
