//! Exhaustive interleaving checks of the two lock-free protocols the QoS
//! redesign added to the scheduler hot path:
//!
//! 1. **Waitlist release** — `crates/pioman/src/manager.rs`
//!    (`PendingTask::satisfy_one`): each completed predecessor performs one
//!    atomic `fetch_sub(1)` on the dependent's `remaining` counter, and only
//!    the completer that observes the counter hit zero takes the parked task
//!    out of the slot. Racing completions must release the task *exactly
//!    once* — zero releases strands the dependent forever, two releases
//!    double-runs it.
//!
//! 2. **Background anti-starvation credit** — `crates/pioman/src/lockfree.rs`
//!    (`ClassLanes::class_order_with` / `note_served`): every pop that
//!    serves a higher class while `Background` work waits bumps a relaxed
//!    credit counter; once the credit reaches `BACKGROUND_BYPASS_LIMIT` the
//!    next pop hoists `Background` to the front of the class order. The
//!    relaxed counter admits at most one stale-read bypass per racing
//!    popper, so the progress bound is `LIMIT + threads - 1` higher-class
//!    serves while `Background` waits (the bound `docs/SCHEDULER.md`
//!    states and `qos_policy.rs` pins exactly for the sequential case).
//!
//! Each model has a planted-bug twin (the atomic RMW replaced by the racy
//! load-then-store it guards against) that the checker must catch — proof
//! the model is strong enough for the property it pins.

use interleave::atomic::AtomicUsize;
use interleave::{model_expect_violation, model_with, Options};
use std::sync::Arc;

/// `fetch_sub(1)` spelled with the wrapping `fetch_add` the model API
/// provides (core atomics wrap, so adding `usize::MAX` subtracts one).
/// Returns the previous value, like the production `fetch_sub`.
fn fetch_sub_one(counter: &AtomicUsize) -> usize {
    counter.fetch_add(usize::MAX)
}

// ---------------------------------------------------------------------------
// Model 1: waitlist release (PendingTask::satisfy_one)
// ---------------------------------------------------------------------------

/// The modeled pending dependent. Production parks the task in a
/// `Mutex<Option<Task>>`; the model stands that in with an atomic token
/// (1 = task parked, 0 = taken) — a strictly *weaker* guard than the
/// mutex, so exactly-once here is carried entirely by the `remaining`
/// gate, just as the production comment claims.
struct ModelPending {
    remaining: AtomicUsize,
    slot: AtomicUsize,
    released: AtomicUsize,
}

impl ModelPending {
    fn new(deps: usize) -> Self {
        ModelPending {
            remaining: AtomicUsize::new(deps),
            slot: AtomicUsize::new(1),
            released: AtomicUsize::new(0),
        }
    }

    /// `PendingTask::satisfy_one`, faithfully: one atomic decrement, and
    /// only the completer that took the counter from 1 to 0 may take the
    /// slot.
    fn satisfy_one(&self) {
        if fetch_sub_one(&self.remaining) == 1 {
            let got = self.slot.swap(0);
            assert_eq!(got, 1, "last completer found the slot already empty");
            self.released.fetch_add(1);
        }
    }

    /// The planted-bug twin: the decrement as a load-then-store. Two
    /// racing completers can both read `remaining == 2` and both store 1
    /// — nobody ever observes the 1→0 edge and the dependent is stranded.
    fn satisfy_one_racy(&self) {
        let r = self.remaining.load();
        self.remaining.store(r - 1);
        if r == 1 {
            let got = self.slot.swap(0);
            assert_eq!(got, 1, "last completer found the slot already empty");
            self.released.fetch_add(1);
        }
    }
}

#[test]
fn racing_completions_release_the_dependent_exactly_once() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let pending = Arc::new(ModelPending::new(2));
            let p2 = pending.clone();
            let t = interleave::thread::spawn(move || p2.satisfy_one());
            pending.satisfy_one();
            t.join();
            assert_eq!(
                pending.released.peek(),
                1,
                "dependent must be released exactly once"
            );
            assert_eq!(pending.slot.peek(), 0, "slot must be drained");
            assert_eq!(pending.remaining.peek(), 0);
        },
    );
    assert!(report.schedules > 1, "the race was really explored");
}

#[test]
fn racy_waitlist_decrement_strands_the_dependent() {
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let pending = Arc::new(ModelPending::new(2));
            let p2 = pending.clone();
            let t = interleave::thread::spawn(move || p2.satisfy_one_racy());
            pending.satisfy_one_racy();
            t.join();
            assert_eq!(
                pending.released.peek(),
                1,
                "dependent must be released exactly once"
            );
        },
    );
    assert!(failure.message.contains("released exactly once"));
    assert!(!failure.trail.is_empty(), "failure must carry a schedule");
}

// ---------------------------------------------------------------------------
// Model 2: background anti-starvation credit (ClassLanes pop policy)
// ---------------------------------------------------------------------------

/// Miniature bypass limit. The production constant is 16; the bound's
/// *shape* (`LIMIT + threads - 1`) is what the model checks, so a small
/// limit keeps the schedule space explorable.
const LIMIT: usize = 2;
const THREADS: usize = 2;
/// Pops per thread. Enough that the faithful model is guaranteed to reach
/// the hoist (at most `LIMIT + THREADS - 1` bypasses, then the very next
/// pop serves `Background`).
const POPS: usize = 3;
/// Higher-class backlog: one item per pop, so no pop ever comes up empty
/// even in the twin where `Background` may never be served.
const HI_ITEMS: usize = THREADS * POPS;
/// The concurrent starvation bound under a Relaxed credit: each racing
/// popper beyond the first can contribute one stale-read bypass past
/// `LIMIT` (docs/SCHEDULER.md §9).
const BYPASS_BOUND: usize = LIMIT + THREADS - 1;

/// Two-lane stand-in for `ClassLanes`: a higher-class lane (counter of
/// items, popped by CAS-decrement like a lock-free queue's head race) and
/// a single waiting `Background` item (1 = waiting, 0 = served).
struct ModelLanes {
    credit: AtomicUsize,
    hi: AtomicUsize,
    bg: AtomicUsize,
    /// Instrumentation, not protocol: exact count of higher-class serves
    /// that happened while `Background` was still waiting.
    hi_while_bg: AtomicUsize,
    served: AtomicUsize,
}

impl ModelLanes {
    fn new() -> Self {
        ModelLanes {
            credit: AtomicUsize::new(0),
            hi: AtomicUsize::new(HI_ITEMS),
            bg: AtomicUsize::new(1),
            hi_while_bg: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
        }
    }

    /// One element off the higher-class lane, racing other poppers the
    /// way `SegQueue::pop` races on its head.
    fn pop_hi(&self) -> bool {
        loop {
            let n = self.hi.load();
            if n == 0 {
                return false;
            }
            if self.hi.compare_exchange(n, n - 1).is_ok() {
                return true;
            }
        }
    }

    /// `ClassLanes::pop`, faithfully: class order from a relaxed credit
    /// read (`class_order_with`), then `note_served` — serving
    /// `Background` resets the credit, serving a higher class while
    /// `Background` waits bumps it with one atomic `fetch_add`.
    fn pop(&self, racy_credit: bool) {
        let hoist = self.credit.load() >= LIMIT && self.bg.load() > 0;
        let order: [u8; 2] = if hoist { [1, 0] } else { [0, 1] };
        for class in order {
            if class == 1 {
                // Background lane: the swap is the winner-takes-it pop.
                if self.bg.swap(0) == 1 {
                    self.credit.store(0);
                    self.served.fetch_add(1);
                    return;
                }
            } else if self.pop_hi() {
                // note_served with the serve-time view of the bg lane.
                if self.bg.load() > 0 {
                    self.hi_while_bg.fetch_add(1);
                    if racy_credit {
                        // Planted bug: the credit bump as load-then-store.
                        // A stale store can *lower* the credit below the
                        // limit after a peer already raised it, buying
                        // extra bypasses past the documented bound.
                        let c = self.credit.load();
                        self.credit.store(c + 1);
                    } else {
                        self.credit.fetch_add(1);
                    }
                }
                self.served.fetch_add(1);
                return;
            }
        }
        panic!("pop found both lanes empty despite a sized backlog");
    }
}

fn run_lanes(racy_credit: bool) -> Arc<ModelLanes> {
    let lanes = Arc::new(ModelLanes::new());
    let l2 = lanes.clone();
    let t = interleave::thread::spawn(move || {
        for _ in 0..POPS {
            l2.pop(racy_credit);
        }
    });
    for _ in 0..POPS {
        lanes.pop(racy_credit);
    }
    t.join();
    lanes
}

#[test]
fn background_bypass_bound_holds_under_racing_poppers() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let lanes = run_lanes(false);
            assert!(
                lanes.hi_while_bg.peek() <= BYPASS_BOUND,
                "background starved past the bypass bound"
            );
            assert_eq!(
                lanes.bg.peek(),
                0,
                "background must be served within the pop budget"
            );
            assert_eq!(lanes.served.peek(), THREADS * POPS, "a pop came up empty");
        },
    );
    assert!(report.schedules > 100, "the race was really explored");
}

#[test]
fn racy_credit_bump_starves_background_past_the_bound() {
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let lanes = run_lanes(true);
            assert!(
                lanes.hi_while_bg.peek() <= BYPASS_BOUND,
                "background starved past the bypass bound"
            );
        },
    );
    assert!(failure.message.contains("starved past the bypass bound"));
    assert!(!failure.trail.is_empty(), "failure must carry a schedule");
}
