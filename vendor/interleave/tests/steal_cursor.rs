//! Exhaustive interleaving checks of the lock-free backend's steal-half
//! pass — the steal-cursor protocol of `crates/pioman/src/queue.rs`
//! (`Backend::LockFree`): a thief locks the cursor, drains the
//! Michael–Scott list's prefix into it, and takes its quota of eligible
//! tasks, while the owner concurrently pops — cursor front first, then
//! the list — *without* taking the cursor lock on the list path.
//!
//! That unlocked owner/list path racing the thief's drain is exactly the
//! window PR 4's cursor design opened; the property proven here is that
//! it can only redistribute tasks, never lose or duplicate one, and that
//! the thief never takes a task its cpuset filter rejects.

use interleave::atomic::AtomicUsize;
use interleave::sync::Lock;
use interleave::{model_with, Options};
use std::collections::VecDeque;
use std::sync::Arc;

mod models;
use models::ModelQueue;

/// Task ids 2..=5; even ids are "eligible for the thief" (the cpuset
/// stand-in).
fn eligible(id: usize) -> bool {
    id.is_multiple_of(2)
}

struct CursorQueue {
    list: ModelQueue,
    cursor: Lock<VecDeque<usize>>,
    cursor_len: AtomicUsize,
}

impl CursorQueue {
    fn new() -> Self {
        CursorQueue {
            list: ModelQueue::new(6),
            cursor: Lock::new(VecDeque::new()),
            cursor_len: AtomicUsize::new(0),
        }
    }

    /// The owner's dequeue: cursor hint → cursor front, else list pop.
    fn owner_pop(&self) -> Option<usize> {
        if self.cursor_len.load() > 0 {
            let mut guard = self.cursor.lock();
            if let Some(t) = guard.pop_front() {
                self.cursor_len.poke(guard.len());
                return Some(t);
            }
        }
        self.list.pop()
    }

    /// The thief's steal-half pass: serialize on the cursor lock, drain
    /// the list prefix into the cursor in order, take up to half of the
    /// eligible tasks from the front.
    fn steal_half(&self) -> Vec<usize> {
        let mut guard = self.cursor.lock();
        while let Some(t) = self.list.pop() {
            guard.push_back(t);
            self.cursor_len.poke(guard.len());
        }
        let eligible_count = guard.iter().filter(|&&t| eligible(t)).count();
        let quota = eligible_count.div_ceil(2);
        let mut taken = Vec::new();
        let mut i = 0;
        while taken.len() < quota && i < guard.len() {
            if eligible(guard[i]) {
                taken.push(guard.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
        self.cursor_len.poke(guard.len());
        taken
    }

    /// Explorer-side drain after the racing threads joined.
    fn drain(&self) -> Vec<usize> {
        let mut rest: Vec<usize> = self.cursor.lock().drain(..).collect();
        rest.extend(self.list.drain());
        rest
    }
}

#[test]
fn steal_pass_racing_owner_pops_never_loses_or_duplicates() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let q = Arc::new(CursorQueue::new());
            for id in 2..=5 {
                q.list.push(id);
            }
            let q2 = q.clone();
            let thief = interleave::thread::spawn(move || q2.steal_half());
            let mut mine = Vec::new();
            mine.extend(q.owner_pop());
            mine.extend(q.owner_pop());
            let stolen = thief.join();
            assert!(
                stolen.iter().all(|&t| eligible(t)),
                "thief took an ineligible task"
            );
            let mut all = mine;
            all.extend(stolen);
            all.extend(q.drain());
            all.sort_unstable();
            assert_eq!(
                all,
                vec![2, 3, 4, 5],
                "every task present exactly once after the race"
            );
        },
    );
    assert!(report.schedules > 100, "the race was really explored");
}
