//! Exhaustive interleaving checks of the parked-flag/wake handshake —
//! the protocol between `Progression`'s pre-park sequence
//! (`note_parked(true)` → final work checks → sleep) and the submit
//! side (enqueue → read parked flag → deliver unpark token), as
//! documented in `docs/SCHEDULER.md` §3 and the ordering table.
//!
//! The property: **no lost wake** — there is no interleaving in which
//! the worker commits to sleep while work is enqueued and no unpark
//! token is pending. The model is exactly the Dekker-shaped store-load
//! pattern that forces the real flag to stay `SeqCst` while everything
//! around it weakened to acquire/release: flip the worker's two steps
//! (check before publish) and the handshake breaks — the second test
//! requires the checker to find that lost wake, proving both that the
//! published order is load-bearing and that this harness can see it.

use interleave::atomic::{AtomicBool, AtomicUsize};
use interleave::{model, model_expect_violation, Options};
use std::sync::Arc;

struct ParkModel {
    /// Queue depth (the worker's `has_work_for` summary).
    len: AtomicUsize,
    /// The worker's published parked intent (`CoreState::parked`).
    parked: AtomicBool,
    /// Pending unpark token (`std::thread` tokens persist until consumed,
    /// which is what makes "token delivered after the sleep decision"
    /// safe in the real system).
    token: AtomicBool,
    /// Outcome: the worker committed to sleep.
    slept: AtomicBool,
}

impl ParkModel {
    fn new() -> Self {
        ParkModel {
            len: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            token: AtomicBool::new(false),
            slept: AtomicBool::new(false),
        }
    }

    /// The worker's pre-park sequence. `publish_first` is the real
    /// protocol (flag before the final work check); `false` is the
    /// planted bug (check before flag).
    fn worker(&self, publish_first: bool) {
        if publish_first {
            self.parked.store(true);
        }
        let work = self.len.load();
        if !publish_first {
            self.parked.store(true);
        }
        if work == 0 {
            // park_timeout: consumes a pending token instead of sleeping.
            if !self.token.swap(false) {
                self.slept.store(true);
            }
        } else {
            self.parked.store(false); // back to the keypoint
        }
    }

    /// The submit side: enqueue, then wake the parked worker.
    fn submitter(&self) {
        self.len.fetch_add(1);
        if self.parked.load() {
            self.token.store(true);
        }
    }
}

#[test]
fn publish_before_check_never_loses_a_wake() {
    let report = model(|| {
        let m = Arc::new(ParkModel::new());
        let m2 = m.clone();
        let submitter = interleave::thread::spawn(move || m2.submitter());
        m.worker(true);
        submitter.join();
        // The contract: if the worker went to sleep while work was
        // enqueued, a token must be pending to wake it (a stale token
        // with no work is fine — one spurious loop, never a lost wake).
        if m.slept.peek() && m.len.peek() > 0 {
            assert!(
                m.token.peek(),
                "lost wake: worker asleep, work queued, no token pending"
            );
        }
    });
    assert!(report.schedules > 5, "the race was really explored");
}

#[test]
fn checker_finds_the_check_before_publish_lost_wake() {
    let failure = model_expect_violation(Options::default(), || {
        let m = Arc::new(ParkModel::new());
        let m2 = m.clone();
        let submitter = interleave::thread::spawn(move || m2.submitter());
        m.worker(false); // BUG: final work check runs before the flag
        submitter.join();
        if m.slept.peek() && m.len.peek() > 0 {
            assert!(
                m.token.peek(),
                "lost wake: worker asleep, work queued, no token pending"
            );
        }
    });
    assert!(
        failure.message.contains("lost wake"),
        "unexpected failure: {failure}"
    );
}
