//! Exhaustive interleaving checks of the Michael–Scott queue protocol —
//! the model behind `vendor/crossbeam`'s `SegQueue` (see
//! `tests/models/mod.rs` for the exact correspondence).
//!
//! Every schedule of every test is executed: a passing run is a proof
//! that *no interleaving* of the modeled operations loses, duplicates, or
//! (per producer) reorders an element — the property the acquire/release
//! ordering pass must preserve at the protocol level. The final test
//! plants a classic MS-queue bug and requires the checker to find it,
//! demonstrating these proofs have teeth.

mod models;

use interleave::{model, model_expect_violation, Options};
use models::ModelQueue;
use std::sync::Arc;

#[test]
fn concurrent_pushes_never_lose_an_element() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(3));
        let q2 = q.clone();
        let t = interleave::thread::spawn(move || q2.push(2));
        q.push(3);
        t.join();
        let mut got = q.drain();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3], "both pushes visible exactly once");
    });
    assert!(report.schedules > 10, "pushes really interleaved");
}

#[test]
fn push_races_pop_without_loss_or_duplication() {
    model(|| {
        let q = Arc::new(ModelQueue::new(4));
        let q2 = q.clone();
        let producer = interleave::thread::spawn(move || {
            q2.push(2);
            q2.push(3);
        });
        // Race two pops against the pushes; they may see any prefix.
        let mut got = Vec::new();
        got.extend(q.pop());
        got.extend(q.pop());
        producer.join();
        got.extend(q.drain());
        assert_eq!(got, vec![2, 3], "FIFO per producer, nothing lost");
    });
}

#[test]
fn racing_poppers_never_duplicate() {
    model(|| {
        let q = Arc::new(ModelQueue::new(4));
        q.push(2);
        q.push(3);
        let q2 = q.clone();
        let thief = interleave::thread::spawn(move || q2.pop());
        let mine = q.pop();
        let theirs = thief.join();
        let mut got: Vec<usize> = [mine, theirs].into_iter().flatten().collect();
        got.extend(q.drain());
        got.sort_unstable();
        assert_eq!(got, vec![2, 3], "each element popped exactly once");
    });
}

#[test]
fn checker_finds_the_store_instead_of_cas_unlink_bug() {
    // Break the protocol the way a hasty "optimization" would: the
    // pop-side unlink becomes a plain store instead of a CAS. Two racing
    // poppers can then both read the same `head`, both "win", and the
    // same element is consumed twice. The checker must produce that
    // interleaving — it is exactly the duplication the real queue's
    // compare-exchange exists to rule out.
    struct BrokenQueue(ModelQueue);
    impl BrokenQueue {
        fn pop_store(&self) -> Option<usize> {
            let q = &self.0;
            let head = q.head_for_test().load();
            let next = q.next_for_test(head).load();
            if next == 0 {
                return None;
            }
            // BUG: check-then-act; the unlink is not atomic.
            q.head_for_test().store(next);
            Some(next)
        }
    }
    let failure = model_expect_violation(Options::default(), || {
        let q = Arc::new(BrokenQueue(ModelQueue::new(4)));
        q.0.push(2);
        q.0.push(3);
        let q2 = q.clone();
        let thief = interleave::thread::spawn(move || q2.pop_store());
        let mine = q.pop_store();
        let theirs = thief.join();
        let mut got: Vec<usize> = [mine, theirs].into_iter().flatten().collect();
        got.extend(q.0.drain());
        let n = got.len();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), n, "an element was consumed twice");
    });
    assert!(
        failure.message.contains("consumed twice"),
        "unexpected failure: {failure}"
    );
}
