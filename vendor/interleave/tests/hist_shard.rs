//! Exhaustive interleaving checks of the histogram shard's lock-free
//! record path — `crates/pioman/src/hist.rs` (`Shard::record`): a bucket
//! `fetch_add`, the count/sum `fetch_add` pair, and the min/max
//! compare-exchange loops, all racing an identical recorder on the *same*
//! shard (two tasks executing on one core's slot, or `record()` callers
//! whose thread slots collide under the shard mask).
//!
//! The shard-fold path is pure arithmetic over a quiesced snapshot and is
//! covered by the `hist_shard_fold_matches_single_shard` proptest; what
//! only an interleaving explorer can prove is the *contended single
//! shard*: no lost increments, an exact sum, and a max that converges to
//! the true maximum under every schedule. The planted-bug twin replaces
//! the max CAS loop with the racy load-then-store it guards against and
//! demands the checker catch it — proof the model is strong enough for
//! the property it pins.

use interleave::atomic::AtomicUsize;
use interleave::{model_expect_violation, model_with, Options};
use std::sync::Arc;

/// Miniature bucket map standing in for `hist::bucket_index`: 4 buckets
/// of width 4. The real function is pure and exactness-tested in
/// `hist.rs`; the model only needs *some* pure value→bucket map.
const BUCKETS: usize = 4;
fn bucket(v: usize) -> usize {
    (v / 4).min(BUCKETS - 1)
}

/// The modeled shard: same field set and same operation order as
/// `Shard::record` (bucket, count, sum, then the max CAS loop).
struct ModelShard {
    buckets: [AtomicUsize; BUCKETS],
    count: AtomicUsize,
    sum: AtomicUsize,
    max: AtomicUsize,
}

impl ModelShard {
    fn new() -> Self {
        ModelShard {
            buckets: Default::default(),
            count: AtomicUsize::new(0),
            sum: AtomicUsize::new(0),
            max: AtomicUsize::new(0),
        }
    }

    /// `Shard::record`, faithfully: relaxed RMWs become modeled SC RMWs
    /// (each one scheduling point), the max update is the same
    /// compare-exchange retry loop.
    fn record(&self, v: usize) {
        self.buckets[bucket(v)].fetch_add(1);
        self.count.fetch_add(1);
        self.sum.fetch_add(v);
        loop {
            let cur = self.max.load();
            if v <= cur {
                break;
            }
            if self.max.compare_exchange(cur, v).is_ok() {
                break;
            }
        }
    }

    /// The planted-bug twin of the max update: check-then-store without
    /// the CAS. A racing smaller value can overwrite a larger one.
    fn record_racy_max(&self, v: usize) {
        self.buckets[bucket(v)].fetch_add(1);
        self.count.fetch_add(1);
        self.sum.fetch_add(v);
        let cur = self.max.load();
        if v > cur {
            self.max.store(v);
        }
    }

    /// Quiesced snapshot (explorer side, after join): non-yielding reads,
    /// like folding shards after the workload stopped.
    fn snapshot(&self) -> (Vec<usize>, usize, usize, usize) {
        (
            self.buckets.iter().map(|b| b.peek()).collect(),
            self.count.peek(),
            self.sum.peek(),
            self.max.peek(),
        )
    }
}

#[test]
fn contended_records_lose_nothing_and_max_converges() {
    // Values chosen to collide on bucket 1 (5, 6) *and* race distinct
    // buckets (3, 14), with the true max recorded by the spawned thread
    // so the main thread's CAS loop must observe and yield to it in some
    // schedules.
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let shard = Arc::new(ModelShard::new());
            let s2 = shard.clone();
            let t = interleave::thread::spawn(move || {
                s2.record(5);
                s2.record(14);
            });
            shard.record(3);
            shard.record(6);
            t.join();
            let (buckets, count, sum, max) = shard.snapshot();
            assert_eq!(count, 4, "lost a count increment");
            assert_eq!(sum, 3 + 5 + 6 + 14, "lost part of the sum");
            assert_eq!(
                buckets,
                vec![1, 2, 0, 1],
                "bucket counters must hold the exact multiset"
            );
            assert_eq!(max, 14, "max must converge to the true maximum");
        },
    );
    assert!(report.schedules > 100, "the race was really explored");
}

#[test]
fn racy_load_then_store_max_is_caught() {
    // Same workload shape, bugged max path: thread A (recording 5) can
    // load max=0, stall while thread B records 9 (max=9), then store 5 —
    // publishing a maximum smaller than a recorded value. The checker
    // must find that schedule; if it ever stops doing so, the model has
    // gone too weak to trust the passing test above.
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || {
            let shard = Arc::new(ModelShard::new());
            let s2 = shard.clone();
            let t = interleave::thread::spawn(move || s2.record_racy_max(9));
            shard.record_racy_max(5);
            t.join();
            let (_, count, sum, max) = shard.snapshot();
            assert_eq!(count, 2);
            assert_eq!(sum, 14);
            assert_eq!(max, 9, "racy max lost the larger value");
        },
    );
    assert!(failure.message.contains("racy max lost the larger value"));
    assert!(!failure.trail.is_empty(), "failure must carry a schedule");
}
