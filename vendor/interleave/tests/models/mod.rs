//! Shared model of the Michael–Scott queue, written against the
//! interleave atomics so every pointer operation is a scheduling point.
//!
//! This is the *protocol* of `vendor/crossbeam/src/queue.rs` with memory
//! reclamation stripped out: nodes live in a fixed arena and are never
//! freed, so the model checks exactly the linearizability half of the
//! argument (no element lost, duplicated, or reordered per producer)
//! while the `epoch` model checks the reclamation half. Node index 0 is
//! the null pointer; node 1 is the initial dummy; a pushed node's index
//! doubles as its value.

use interleave::atomic::AtomicUsize;

/// The modeled queue: `head`/`tail` are arena indices, `next[i]` is node
/// i's link (0 = null).
pub struct ModelQueue {
    head: AtomicUsize,
    tail: AtomicUsize,
    next: Vec<AtomicUsize>,
}

impl ModelQueue {
    /// An empty queue whose arena can hold node ids `1..=capacity`
    /// (id 1 is consumed by the initial dummy).
    pub fn new(capacity: usize) -> Self {
        ModelQueue {
            head: AtomicUsize::new(1),
            tail: AtomicUsize::new(1),
            next: (0..=capacity).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Links node `n` at the tail — the exact CAS structure of
    /// `SegQueue::push` (help a lagging tail, link with CAS, swing tail
    /// best-effort).
    pub fn push(&self, n: usize) {
        assert!(n > 1 && n < self.next.len(), "node id outside the arena");
        loop {
            let tail = self.tail.load();
            let next = self.next[tail].load();
            if next != 0 {
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            if self.next[tail].compare_exchange(0, n).is_ok() {
                let _ = self.tail.compare_exchange(tail, n);
                return;
            }
        }
    }

    /// Unlinks the front — the exact CAS structure of `SegQueue::pop`
    /// (null next = empty, help the dummy-tail forward before unlinking,
    /// CAS winner takes the value). Returns the popped value (the node id
    /// that became the new dummy).
    pub fn pop(&self) -> Option<usize> {
        loop {
            let head = self.head.load();
            let next = self.next[head].load();
            if next == 0 {
                return None;
            }
            let tail = self.tail.load();
            if head == tail {
                let _ = self.tail.compare_exchange(tail, next);
                continue;
            }
            if self.head.compare_exchange(head, next).is_ok() {
                return Some(next);
            }
        }
    }

    /// Drains the queue (explorer-side, after joins): pops until empty.
    pub fn drain(&self) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }

    /// Raw head pointer — for building deliberately *broken* variants in
    /// the find-the-bug tests.
    #[allow(dead_code)]
    pub fn head_for_test(&self) -> &AtomicUsize {
        &self.head
    }

    /// Raw link of node `i` — same purpose as
    /// [`head_for_test`](Self::head_for_test).
    #[allow(dead_code)]
    pub fn next_for_test(&self, i: usize) -> &AtomicUsize {
        &self.next[i]
    }
}
