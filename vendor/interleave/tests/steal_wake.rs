//! Exhaustive interleaving checks of the socket-aggregated steal-wake
//! scan — `crates/pioman/src/manager.rs` (`wake_for_steal` +
//! `note_parked`): the waker skips a whole socket's candidate run when
//! its parked count reads zero, so the count is a *gate in front of* the
//! per-core parked flags the PR-4 handshake already proved safe
//! (`park_wake` model). That gate is only sound because a parking worker
//! publishes its **entire** park intent — flag and socket count — before
//! the final work check that commits it to sleep: a waker that misses
//! the count then provably enqueued before the worker's final check, so
//! the worker sees the work and goes back to the keypoint instead.
//!
//! The planted-bug twin publishes the count *after* the final work check
//! (the "aggregate lags the flag" hazard): the waker skips the socket on
//! count 0, the worker then bumps the count and sleeps on its stale
//! check — a lost wake the checker must find.

use interleave::atomic::{AtomicBool, AtomicUsize};
use interleave::{model, model_expect_violation, Options};
use std::sync::Arc;

struct WakeModel {
    /// Victim queue depth (the waker's reason to recruit).
    len: AtomicUsize,
    /// The worker's parked flag (`CoreState::parked`).
    parked: AtomicBool,
    /// The socket's parked-worker count (`SocketTier::parked`) — the
    /// waker's O(sockets) short-circuit.
    socket_parked: AtomicUsize,
    /// Pending unpark token (persists until consumed, like the real
    /// `std::thread` token).
    token: AtomicBool,
    /// Outcome: the worker committed to sleep.
    slept: AtomicBool,
}

impl WakeModel {
    fn new() -> Self {
        WakeModel {
            len: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            socket_parked: AtomicUsize::new(0),
            token: AtomicBool::new(false),
            slept: AtomicBool::new(false),
        }
    }

    /// The worker's pre-park sequence. `count_first` is the real
    /// protocol (`note_parked` publishes flag and socket count, then the
    /// worker re-checks for work); `false` is the planted bug (the
    /// count published only after the final check).
    fn worker(&self, count_first: bool) {
        self.parked.store(true);
        if count_first {
            self.socket_parked.fetch_add(1);
        }
        let work = self.len.load();
        if !count_first {
            self.socket_parked.fetch_add(1);
        }
        if work == 0 {
            if !self.token.swap(false) {
                self.slept.store(true);
            }
        } else {
            // Back to the keypoint: retract the park intent.
            self.parked.store(false);
            self.socket_parked.store(0);
        }
    }

    /// `wake_for_steal` after a backlog-crossing enqueue: enqueue, skip
    /// the socket when its count reads zero, else scan the flag and
    /// deliver the token.
    fn waker(&self) {
        self.len.fetch_add(1);
        if self.socket_parked.load() == 0 {
            return; // socket "has no parked worker" — scan skipped
        }
        if self.parked.load() {
            self.token.store(true);
        }
    }
}

fn check(m: &WakeModel) {
    // The contract: a sleeping worker with work queued must have a token
    // pending (a token landing after the sleep decision still wakes the
    // real parker; a stale token with no work is one spurious loop).
    if m.slept.peek() && m.len.peek() > 0 {
        assert!(
            m.token.peek(),
            "lost wake: worker asleep, backlog queued, socket scan skipped"
        );
    }
}

#[test]
fn count_published_before_the_final_check_never_loses_a_wake() {
    let report = model(|| {
        let m = Arc::new(WakeModel::new());
        let m2 = m.clone();
        let waker = interleave::thread::spawn(move || m2.waker());
        m.worker(true);
        waker.join();
        check(&m);
    });
    assert!(report.schedules > 5, "the race was really explored");
}

#[test]
fn checker_finds_the_lagging_count_lost_wake() {
    // The schedule: worker sets its flag and loads len = 0; the waker
    // enqueues, reads socket count 0, and skips the whole socket without
    // ever looking at the flag; the worker bumps the count and sleeps.
    let failure = model_expect_violation(Options::default(), || {
        let m = Arc::new(WakeModel::new());
        let m2 = m.clone();
        let waker = interleave::thread::spawn(move || m2.waker());
        m.worker(false); // BUG: count lags the final work check
        waker.join();
        check(&m);
    });
    assert!(
        failure.message.contains("lost wake"),
        "unexpected failure: {failure}"
    );
}
