//! Exhaustive interleaving checks of the per-socket span decay —
//! `crates/pioman/src/manager.rs` (`SocketTier::maybe_decay_span`): the
//! O(sockets) park probe trusts `(pending > 0, span admits core)` as its
//! only view of a whole socket, so a span clear that races an enqueue
//! must never leave a pending task's bits missing — a probe that misses
//! here misses *forever* (nothing re-ORs the bits until another enqueue),
//! which is the stale-span parking stall.
//!
//! The protocol under test is the swap-recheck-restore dance: the
//! decayer `swap`s the span to zero, re-reads the pending hint, and
//! restores the swapped bits if the socket turned out non-empty. The
//! planted-bug twin clears with a plain unconditional wipe — the exact
//! shortcut the restore exists to forbid — and the checker must find the
//! schedule where a concurrent enqueue's bits are wiped while its task
//! stays pending.

use interleave::atomic::AtomicUsize;
use interleave::{model_expect_violation, model_with, Options};
use std::sync::Arc;

/// Decrement (`fetch_sub(1)`) via wrap-around `fetch_add`.
fn dec(counter: &AtomicUsize) {
    counter.fetch_add(usize::MAX);
}

/// One socket's probe-facing aggregates: the pending hint and the span
/// word (a bitmask of eligible cores, here one bit per task id).
struct SocketAggregates {
    pending: AtomicUsize,
    span: AtomicUsize,
}

impl SocketAggregates {
    fn new() -> Self {
        SocketAggregates {
            pending: AtomicUsize::new(0),
            span: AtomicUsize::new(0),
        }
    }

    /// `note_enqueued`: hint first, then the span OR.
    fn enqueue(&self, bit: usize) {
        self.pending.fetch_add(1);
        self.span.fetch_or(bit);
    }

    /// `note_removed` + `maybe_decay_span`: retire the hint; a removal
    /// that (by its own observation) drained the socket decays the span —
    /// swap out the bits, re-check the hint, restore if non-empty.
    fn remove_and_decay(&self, restore: bool) {
        let was = self.pending.load();
        dec(&self.pending);
        if was != 1 {
            return;
        }
        let cleared = self.span.swap(0);
        if restore && self.pending.load() > 0 && cleared != 0 {
            self.span.fetch_or(cleared);
        }
        // The twin simply keeps the wipe: no recheck, no restore.
    }
}

/// The shared scenario: one old task (bit 1) is being removed — and its
/// removal triggers the decay — while a new task (bit 2) is concurrently
/// enqueued. At quiescence exactly one task is pending, and the probe
/// contract requires its bit to be visible.
fn run(restore: bool) {
    let sock = Arc::new(SocketAggregates::new());
    sock.pending.store(1);
    sock.span.store(1);
    let s2 = sock.clone();
    let enqueuer = interleave::thread::spawn(move || s2.enqueue(2));
    sock.remove_and_decay(restore);
    enqueuer.join();
    assert_eq!(sock.pending.peek(), 1, "one task pending at quiescence");
    assert!(
        sock.span.peek() & 2 != 0,
        "stale span: pending task invisible to the O(sockets) probe"
    );
}

#[test]
fn decay_racing_an_enqueue_never_hides_the_pending_task() {
    let report = model_with(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || run(true),
    );
    assert!(report.schedules > 5, "the race was really explored");
    // Note the asymmetry the model proves: the restore may resurrect the
    // *removed* task's bit 1 (a stale over-approximation costing one
    // wasted probe) — what it can never do is lose bit 2.
}

#[test]
fn checker_finds_the_unconditional_wipe_stale_span() {
    // Enqueue lands completely (hint 2, span 1|2), then the removal's
    // decay swaps the span to zero and — without the recheck — leaves it
    // there: pending 1, span 0, probe blind. The checker must find it.
    let failure = model_expect_violation(
        Options {
            preemption_bound: Some(2),
            ..Options::default()
        },
        || run(false),
    );
    assert!(
        failure.message.contains("stale span"),
        "unexpected failure: {failure}"
    );
}
