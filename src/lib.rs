//! PIOMan reproduction suite — facade crate.
//!
//! Re-exports every crate of the workspace so examples and downstream users
//! can depend on one name. The interesting entry points:
//!
//! * [`pioman`] — the real-thread task scheduling library (the paper's core
//!   contribution): [`pioman::TaskManager`], [`pioman::Progression`];
//! * [`topology`] — machine trees ([`topology::presets::kwak`], ...);
//! * [`machine`] — the simulated NUMA machine regenerating Tables I–II;
//! * [`net`] / [`newmad`] / [`madmpi`] — the simulated cluster, the
//!   NewMadeleine-style engine, and the MPI-like layer with baselines
//!   regenerating Figs. 4–7.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the paper mapping.

pub use madmpi;
pub use newmadeleine as newmad;
pub use piom_cpuset as cpuset;
pub use piom_des as des;
pub use piom_machine as machine;
pub use piom_net as net;
pub use piom_topology as topology;
pub use pioman;
