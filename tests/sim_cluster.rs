//! Integration: the simulated cluster stack (des + machine + net + newmad
//! + madmpi + harness) reproduces the paper's qualitative results.

use piom_suite::des::SimTime;
use piom_suite::madmpi::overlap::{run_overlap, ComputeSide};
use piom_suite::madmpi::{mtlat, MpiImpl};

#[test]
fn figure4_shape_pioman_flat_baseline_climbs() {
    let threads = [1usize, 8, 64];
    let mv: Vec<f64> = threads
        .iter()
        .map(|&t| mtlat::run_mtlat(MpiImpl::MvapichLike, t, 40, 3).mean_latency_us)
        .collect();
    let pm: Vec<f64> = threads
        .iter()
        .map(|&t| mtlat::run_mtlat(MpiImpl::MadMpi, t, 40, 3).mean_latency_us)
        .collect();
    // PIOMan: flat within 2x across two orders of magnitude of threads.
    assert!(pm[2] < 2.0 * pm[0], "PIOMan not flat: {pm:?}");
    // Baseline: climbs by more than 3x and ends above PIOMan.
    assert!(mv[2] > 3.0 * mv[0], "baseline did not climb: {mv:?}");
    assert!(mv[2] > 2.0 * pm[2], "no crossover at 64 threads");
}

#[test]
fn figure6_shape_receiver_overlap_gap() {
    // At T ~= transfer time, PIOMan hides the 1 MB transfer; baselines pay
    // it serially after the compute.
    let t = SimTime::from_us(1000);
    let pm = run_overlap(MpiImpl::MadMpi, 1 << 20, t, ComputeSide::Receiver, 3);
    let mv = run_overlap(MpiImpl::MvapichLike, 1 << 20, t, ComputeSide::Receiver, 3);
    assert!(pm > 0.9, "PIOMan receiver-side overlap: {pm}");
    assert!(mv < 0.65, "baseline receiver-side overlap: {mv}");
}

#[test]
fn figure5_shape_everyone_overlaps_sender_side() {
    let t = SimTime::from_us(150);
    for impl_ in MpiImpl::ALL {
        let r = run_overlap(impl_, 32 * 1024, t, ComputeSide::Sender, 3);
        assert!(r > 0.75, "{}: sender-side overlap {r}", impl_.label());
    }
}

#[test]
fn harness_reports_are_complete() {
    for what in piom_harness::EXPERIMENTS {
        if what == "all" || what == "fig4" || what == "fig5" || what == "fig6" || what == "fig7" {
            continue; // covered by the quick checks above; `all` is slow
        }
        let report = piom_harness::run(what).expect("known experiment");
        assert!(!report.trim().is_empty(), "{what} produced no output");
    }
    // Spot-check the tables' key structure.
    let t2 = piom_harness::run("table2").unwrap();
    assert!(t2.contains("global queue (16 cores)"));
    assert!(t2.contains("task distribution"));
}

#[test]
fn tables_hold_their_ordering_end_to_end() {
    use piom_suite::machine::simsched::microbench;
    use piom_suite::machine::CostModel;
    use piom_suite::topology::presets;
    let topo = presets::borderline();
    let cost = CostModel::borderline();
    let core0 = microbench(&topo, &cost, topo.core_node(0), 200, 1).mean_ns();
    let chip = microbench(
        &topo,
        &cost,
        topo.nodes_at_level(piom_suite::topology::Level::Chip)[0],
        200,
        1,
    )
    .mean_ns();
    let global = microbench(&topo, &cost, topo.root(), 200, 1).mean_ns();
    assert!(core0 < chip && chip < global, "{core0} {chip} {global}");
}
