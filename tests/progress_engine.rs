//! Integration: the real-thread PIOMan runtime acting as the progress
//! engine of a fake communication library, end to end across crates
//! (cpuset + topology + pioman).

use piom_suite::cpuset::CpuSet;
use piom_suite::pioman::{Progression, ProgressionConfig, TaskManager, TaskOptions, TaskStatus};
use piom_suite::topology::presets;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fake NIC: "polling" succeeds once its completion counter is raised by
/// a (simulated) remote event.
struct FakeNic {
    completions: AtomicU32,
    polls: AtomicU32,
}

#[test]
fn polling_tasks_detect_fake_network_events() {
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo);
    let _prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));

    let nic = Arc::new(FakeNic {
        completions: AtomicU32::new(0),
        polls: AtomicU32::new(0),
    });

    // The communication library submits a repetitive polling task with
    // cache affinity (cores sharing NUMA node #0).
    let n = nic.clone();
    let h = mgr
        .task(move |_| {
            n.polls.fetch_add(1, Ordering::Relaxed);
            if n.completions.load(Ordering::Acquire) > 0 {
                TaskStatus::Done
            } else {
                TaskStatus::Again
            }
        })
        .cpuset(CpuSet::range(0..4))
        .repeat()
        .spawn();

    // The "network event" arrives later, from another thread.
    let n = nic.clone();
    let injector = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        n.completions.fetch_add(1, Ordering::Release);
    });

    h.wait().expect("polling task completes after the event");
    injector.join().unwrap();
    assert!(nic.polls.load(Ordering::Relaxed) >= 1);
}

#[test]
fn request_submission_offload_chain() {
    // §IV-B: submitting a request that does not complete immediately makes
    // the submission task spawn a polling task; both complete in background.
    let topo = Arc::new(presets::borderline());
    let mgr = TaskManager::new(topo);
    let _prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));

    let phase = Arc::new(AtomicUsize::new(0));
    let p = phase.clone();
    let submit_task = mgr
        .task(move |ctx| {
            // The "request" needs polling: delegate a repeat task.
            let p2 = p.clone();
            let mut polls_left = 5;
            ctx.manager
                .task(move |_| {
                    polls_left -= 1;
                    if polls_left == 0 {
                        p2.store(2, Ordering::Release);
                        TaskStatus::Done
                    } else {
                        TaskStatus::Again
                    }
                })
                .cpuset(CpuSet::first_n(8))
                .repeat()
                .spawn();
            // The chained task may already have completed (phase 2) on
            // another core by the time we get here; never move phase back.
            p.fetch_max(1, Ordering::AcqRel);
            TaskStatus::Done
        })
        .cpuset(CpuSet::first_n(8))
        .spawn();
    submit_task.wait().unwrap();

    // Wait for the chained polling task to finish too.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while phase.load(Ordering::Acquire) != 2 {
        assert!(std::time::Instant::now() < deadline, "chained task stuck");
        std::thread::yield_now();
    }
    assert_eq!(mgr.pending_tasks(), 0);
}

#[test]
fn many_concurrent_flows_all_complete() {
    let topo = Arc::new(presets::kwak());
    let mgr = TaskManager::new(topo.clone());
    let _prog = Progression::start(mgr.clone(), ProgressionConfig::all_cores(&mgr));
    let counter = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..200)
        .map(|i| {
            let c = counter.clone();
            let mut reps = i % 4;
            mgr.task(move |_| {
                if reps == 0 {
                    c.fetch_add(1, Ordering::Relaxed);
                    TaskStatus::Done
                } else {
                    reps -= 1;
                    TaskStatus::Again
                }
            })
            .cpuset(CpuSet::single(i % 16))
            .options(if i % 4 == 0 {
                TaskOptions::oneshot()
            } else {
                TaskOptions::repeat()
            })
            .spawn()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 200);
    let stats = mgr.stats();
    assert_eq!(stats.total_submitted(), 200);
}
